package mcast

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestDynamicMatchesRebuild drives random add/remove sequences and
// compares the incrementally maintained tree against a full rebuild
// after every operation.
func TestDynamicMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(250))
	for _, n := range []int{2, 4, 16, 128} {
		tree, err := BuildTagTree(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		members := map[int]bool{}
		for op := 0; op < 300; op++ {
			d := rng.Intn(n)
			if members[d] {
				if err := tree.Remove(d); err != nil {
					t.Fatalf("n=%d op %d: Remove(%d): %v", n, op, d, err)
				}
				delete(members, d)
			} else {
				if err := tree.Add(d); err != nil {
					t.Fatalf("n=%d op %d: Add(%d): %v", n, op, d, err)
				}
				members[d] = true
			}
			var dests []int
			for m := range members {
				dests = append(dests, m)
			}
			want, err := BuildTagTree(n, dests)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tree.Nodes, want.Nodes) {
				t.Fatalf("n=%d op %d (dest %d): incremental tree diverged\n got %v\nwant %v",
					n, op, d, tree.Nodes, want.Nodes)
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("n=%d op %d: %v", n, op, err)
			}
		}
	}
}

// TestContains checks membership queries against the destination list.
func TestContains(t *testing.T) {
	tree, err := BuildTagTree(16, []int{1, 7, 8, 15})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{1: true, 7: true, 8: true, 15: true}
	for d := -1; d <= 16; d++ {
		if tree.Contains(d) != want[d] {
			t.Errorf("Contains(%d) = %v", d, tree.Contains(d))
		}
	}
}

// TestDynamicErrors covers the guards.
func TestDynamicErrors(t *testing.T) {
	tree, err := BuildTagTree(8, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Add(3); err == nil {
		t.Error("Add accepted an existing member")
	}
	if err := tree.Add(8); err == nil {
		t.Error("Add accepted an out-of-range destination")
	}
	if err := tree.Remove(5); err == nil {
		t.Error("Remove accepted a non-member")
	}
	if err := tree.Remove(-1); err == nil {
		t.Error("Remove accepted a negative destination")
	}
}

// TestDynamicSequencesRoute checks an incrementally maintained group's
// sequence is immediately routable: after each membership change the
// sequence parses and reproduces the member set.
func TestDynamicSequencesRoute(t *testing.T) {
	n := 32
	tree, err := BuildTagTree(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	joins := []int{5, 17, 30, 2, 9}
	for _, d := range joins {
		if err := tree.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Remove(17); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSequence(n, tree.Sequence())
	if err != nil {
		t.Fatal(err)
	}
	got := back.Dests()
	want := []int{2, 5, 9, 30}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("group members %v, want %v", got, want)
	}
}
