package mcast

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"brsmn/internal/tag"
)

// TestAssignmentValidation covers the multicast assignment conditions.
func TestAssignmentValidation(t *testing.T) {
	if _, err := New(6, nil); err == nil {
		t.Error("New accepted non-power-of-two size")
	}
	if _, err := New(4, [][]int{{0}, {0}}); err == nil {
		t.Error("New accepted overlapping destination sets")
	}
	if _, err := New(4, [][]int{{4}}); err == nil {
		t.Error("New accepted out-of-range destination")
	}
	if _, err := New(4, [][]int{{1, 1}}); err == nil {
		t.Error("New accepted duplicate destination")
	}
	if _, err := New(4, [][]int{{0}, {1}, {2}, {3}, {0}}); err == nil {
		t.Error("New accepted too many destination sets")
	}
	a, err := New(8, [][]int{{3, 1}, nil, {7}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Dests[0], []int{1, 3}) {
		t.Error("New did not sort destinations")
	}
	if a.Fanout() != 3 || a.ActiveInputs() != 2 || a.IsFull() {
		t.Error("assignment accessors wrong")
	}
}

// TestAssignmentString pins the set notation of the paper.
func TestAssignmentString(t *testing.T) {
	a := MustNew(8, [][]int{{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6}})
	want := "{{0,1}, ∅, {3,4,7}, {2}, ∅, ∅, ∅, {5,6}}"
	if a.String() != want {
		t.Errorf("String = %q, want %q", a.String(), want)
	}
}

// TestOutputOwner checks the inverse mapping.
func TestOutputOwner(t *testing.T) {
	a := MustNew(4, [][]int{{2}, nil, {0, 1}})
	want := []int{2, 2, 0, -1}
	if got := a.OutputOwner(); !reflect.DeepEqual(got, want) {
		t.Errorf("OutputOwner = %v, want %v", got, want)
	}
}

// TestSplit checks the level-splitting specification.
func TestSplit(t *testing.T) {
	a := MustNew(8, [][]int{{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6}})
	up, low := a.Split()
	if !reflect.DeepEqual(up[0], []int{0, 1}) || low[0] != nil {
		t.Error("input 0 split wrong")
	}
	if !reflect.DeepEqual(up[2], []int{3}) || !reflect.DeepEqual(low[2], []int{0, 3}) {
		t.Errorf("input 2 split wrong: %v %v", up[2], low[2])
	}
	if !reflect.DeepEqual(low[7], []int{1, 2}) || up[7] != nil {
		t.Error("input 7 split wrong")
	}
}

// TestPermutationAndBroadcastBuilders checks the convenience builders.
func TestPermutationAndBroadcastBuilders(t *testing.T) {
	a, err := Permutation([]int{3, -1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsPermutation() || a.Fanout() != 3 {
		t.Error("Permutation builder wrong")
	}
	b, err := Broadcast(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Fanout() != 8 || len(b.Dests[5]) != 8 {
		t.Error("Broadcast builder wrong")
	}
	if b.IsPermutation() {
		t.Error("broadcast reported as permutation")
	}
}

// TestTagTreePaperRules checks the tree-tag definition on hand-computed
// cases.
func TestTagTreePaperRules(t *testing.T) {
	tree, err := BuildTagTree(8, []int{3, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root() != tag.Alpha {
		t.Errorf("root = %v, want α", tree.Root())
	}
	if got := tree.Level(2); got[0] != tag.V1 || got[1] != tag.Alpha {
		t.Errorf("level 2 = %v, want [1 α]", got)
	}
	if got := tree.Level(3); got[0] != tag.Eps || got[1] != tag.V1 || got[2] != tag.V0 || got[3] != tag.V1 {
		t.Errorf("level 3 = %v, want [ε 1 0 1]", got)
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if got := tree.Dests(); !reflect.DeepEqual(got, []int{3, 4, 7}) {
		t.Errorf("Dests = %v", got)
	}
}

// TestFig9GoldenSequences pins the two routing-tag sequences of Fig. 9:
// the multicasts {0,1} and {3,4,7} of the running 8x8 example encode as
// 00εαεεε and α1αε011.
func TestFig9GoldenSequences(t *testing.T) {
	s1, err := SequenceFromDests(8, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatSequence(s1); got != "00εαεεε" {
		t.Errorf("sequence for {0,1} = %q, want 00εαεεε", got)
	}
	s2, err := SequenceFromDests(8, []int{3, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatSequence(s2); got != "α1αε011" {
		t.Errorf("sequence for {3,4,7} = %q, want α1αε011", got)
	}
}

// TestFig11Order16 pins the interleaving of eq. (13): for n = 16 the
// sequence is t11, t21, t22, t31, t33, t32, t34, t41, t45, t43, t47,
// t42, t46, t44, t48 (1-based node indices within each level).
func TestFig11Order16(t *testing.T) {
	// Use a tree with synthetic distinguishable values: encode level i,
	// node j as a fake tag value is impossible (only 6 tags), so check
	// the index layout through Sequence's source positions instead:
	// build trees with a single γ marker moved across each level.
	wantLayout := [][2]int{ // (level, 1-based node index) per sequence slot
		{1, 1},
		{2, 1}, {2, 2},
		{3, 1}, {3, 3}, {3, 2}, {3, 4},
		{4, 1}, {4, 5}, {4, 3}, {4, 7}, {4, 2}, {4, 6}, {4, 4}, {4, 8},
	}
	for slot, lj := range wantLayout {
		level, node := lj[0], lj[1]
		tree := TagTree{N: 16, Nodes: make([]tag.Value, 16)}
		for i := range tree.Nodes {
			tree.Nodes[i] = tag.Eps
		}
		// Mark exactly the probed node.
		tree.Nodes[(1<<(level-1))+node-1] = tag.Alpha
		seq := tree.Sequence()
		if len(seq) != 15 {
			t.Fatalf("sequence length %d, want 15", len(seq))
		}
		for k, v := range seq {
			want := tag.Eps
			if k == slot {
				want = tag.Alpha
			}
			if v != want {
				t.Fatalf("slot %d: marker for t%d%d landed at %d", slot, level, node, k)
			}
		}
	}
}

// TestSequenceRoundTrip property-tests Sequence <-> ParseSequence and
// BuildTagTree <-> Dests over random destination sets.
func TestSequenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		for trial := 0; trial < 30; trial++ {
			k := rng.Intn(n + 1)
			dests := rng.Perm(n)[:k]
			tree, err := BuildTagTree(n, dests)
			if err != nil {
				t.Fatal(err)
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("n=%d dests=%v: %v", n, dests, err)
			}
			seq := tree.Sequence()
			if len(seq) != n-1 {
				t.Fatalf("n=%d: sequence length %d", n, len(seq))
			}
			back, err := ParseSequence(n, seq)
			if err != nil {
				t.Fatalf("n=%d dests=%v: ParseSequence: %v", n, dests, err)
			}
			if !reflect.DeepEqual(back.Nodes, tree.Nodes) {
				t.Fatalf("n=%d: ParseSequence(Sequence) differs", n)
			}
			got := tree.Dests()
			wantSorted := append([]int(nil), dests...)
			sortInts(wantSorted)
			if !reflect.DeepEqual(got, wantSorted) && !(len(got) == 0 && len(wantSorted) == 0) {
				t.Fatalf("n=%d: Dests = %v, want %v", n, got, wantSorted)
			}
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestSplitSequenceMatchesSubtrees checks the Fig. 10 splitting rule:
// dealing the post-head tags alternately yields exactly the left and
// right subtree sequences.
func TestSplitSequenceMatchesSubtrees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{4, 8, 32, 128} {
		for trial := 0; trial < 20; trial++ {
			k := 1 + rng.Intn(n)
			dests := rng.Perm(n)[:k]
			tree, err := BuildTagTree(n, dests)
			if err != nil {
				t.Fatal(err)
			}
			seq := tree.Sequence()
			up, low := SplitSequence(seq[1:])
			left, right := tree.Subtrees()
			if !reflect.DeepEqual(up, left.Sequence()) {
				t.Fatalf("n=%d dests=%v: upper split != left subtree sequence", n, dests)
			}
			if !reflect.DeepEqual(low, right.Sequence()) {
				t.Fatalf("n=%d dests=%v: lower split != right subtree sequence", n, dests)
			}
		}
	}
}

// TestParseSequenceRejectsInvalid checks tree-consistency enforcement.
func TestParseSequenceRejectsInvalid(t *testing.T) {
	// α root with an ε child is inconsistent.
	if _, err := ParseSequenceString(4, "αε0"); err == nil {
		t.Error("ParseSequence accepted an α node with an ε child")
	}
	// 0 root with an active right child is inconsistent.
	if _, err := ParseSequenceString(4, "001"); err == nil {
		t.Error("ParseSequence accepted a 0 node with a non-ε right child")
	}
	if _, err := ParseSequence(4, make([]tag.Value, 2)); err == nil {
		t.Error("ParseSequence accepted wrong length")
	}
	if _, err := ParseSequenceString(4, "0x0"); err == nil {
		t.Error("ParseSequenceString accepted an unknown character")
	}
}

// TestSequenceStringRoundTrip checks the text form round-trips.
func TestSequenceStringRoundTrip(t *testing.T) {
	tree, err := ParseSequenceString(8, "α1αε011")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatSequence(tree.Sequence()); got != "α1αε011" {
		t.Errorf("round trip = %q", got)
	}
	// ASCII aliases parse to the same tree.
	tree2, err := ParseSequenceString(8, "a1ae011")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tree2.Nodes, tree.Nodes) {
		t.Error("ASCII alias parsed to a different tree")
	}
}

// TestQuickTreeInvariant property-tests that every generated tree
// validates, via testing/quick over random bitmask destination sets.
func TestQuickTreeInvariant(t *testing.T) {
	f := func(mask uint16) bool {
		n := 16
		var dests []int
		for d := 0; d < n; d++ {
			if mask>>d&1 == 1 {
				dests = append(dests, d)
			}
		}
		tree, err := BuildTagTree(n, dests)
		if err != nil {
			return false
		}
		if tree.Validate() != nil {
			return false
		}
		back, err := ParseSequence(n, tree.Sequence())
		return err == nil && reflect.DeepEqual(back.Nodes, tree.Nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
