package mcast

import (
	"fmt"
	"strings"

	"brsmn/internal/shuffle"
	"brsmn/internal/tag"
)

// Sequence serializes the tag tree into the routing-tag sequence SEQ of
// Section 7.1 (equation 12): the concatenation, level by level, of each
// level's tags permuted by the recursive order() interleaving of equation
// (11) — which is exactly the bit-reversal permutation of the node index
// within its level. The sequence for an n-output connection has n-1 tags.
//
// The interleaving is what makes the hardware's tag handling trivial: the
// head tag a0 steers the message through the current binary splitting
// network, and the remaining tags, dealt out alternately, form the
// sequences for the upper and lower half-size networks (Fig. 10).
func (t TagTree) Sequence() []tag.Value {
	out := make([]tag.Value, 0, t.N-1)
	for i := 1; i <= t.Levels(); i++ {
		level := t.Level(i)
		bits := i - 1
		for j := range level {
			out = append(out, level[shuffle.BitReverse(j, bits)])
		}
	}
	return out
}

// AppendSequence appends the routing-tag sequence to dst and returns
// the extended slice — the allocation-free form of Sequence for callers
// that own a reusable buffer (equation 12 appends exactly t.N-1 tags).
func (t TagTree) AppendSequence(dst []tag.Value) []tag.Value {
	for i := 1; i <= t.Levels(); i++ {
		level := t.Level(i)
		bits := i - 1
		for j := range level {
			dst = append(dst, level[shuffle.BitReverse(j, bits)])
		}
	}
	return dst
}

// SequenceFromDests is a convenience composing BuildTagTree and Sequence.
func SequenceFromDests(n int, dests []int) ([]tag.Value, error) {
	t, err := BuildTagTree(n, dests)
	if err != nil {
		return nil, err
	}
	return t.Sequence(), nil
}

// AppendSequenceFromDests is SequenceFromDests appending into dst. The
// tag tree itself is still built transiently; loops that must not
// allocate at all use a SeqBuilder.
func AppendSequenceFromDests(dst []tag.Value, n int, dests []int) ([]tag.Value, error) {
	t, err := BuildTagTree(n, dests)
	if err != nil {
		return nil, err
	}
	return t.AppendSequence(dst), nil
}

// SeqBuilder computes routing-tag sequences without per-call
// allocation: it owns the tag-tree node array and the prefix-marking
// scratch that BuildTagTree would otherwise allocate per connection,
// recycling them across calls. The zero value is ready to use; a
// SeqBuilder is not safe for concurrent use.
type SeqBuilder struct {
	n     int
	nodes []tag.Value
	has   []bool
}

// AppendFromDests appends the routing-tag sequence of the connection
// with the given destination set to dst and returns the extended slice,
// performing the same validation as BuildTagTree.
func (b *SeqBuilder) AppendFromDests(dst []tag.Value, n int, dests []int) ([]tag.Value, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("mcast: network size %d is not a power of two >= 2", n)
	}
	if n > b.n {
		b.nodes = make([]tag.Value, n)
		b.has = make([]bool, 2*n)
		b.n = n
	}
	has := b.has[:2*n]
	clear(has)
	for _, d := range dests {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("mcast: destination %d out of range [0,%d)", d, n)
		}
		if has[n+d] {
			return nil, fmt.Errorf("mcast: duplicate destination %d", d)
		}
		for k := n + d; k >= 1; k /= 2 {
			has[k] = true
		}
	}
	nodes := b.nodes[:n]
	for k := 1; k < n; k++ {
		left, right := has[2*k], has[2*k+1]
		switch {
		case left && right:
			nodes[k] = tag.Alpha
		case left:
			nodes[k] = tag.V0
		case right:
			nodes[k] = tag.V1
		default:
			nodes[k] = tag.Eps
		}
	}
	return TagTree{N: n, Nodes: nodes}.AppendSequence(dst), nil
}

// ParseSequence rebuilds the tag tree from a routing-tag sequence for an
// n-output network and validates it.
func ParseSequence(n int, s []tag.Value) (TagTree, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return TagTree{}, fmt.Errorf("mcast: network size %d is not a power of two >= 2", n)
	}
	if len(s) != n-1 {
		return TagTree{}, fmt.Errorf("mcast: sequence has %d tags, want n-1 = %d", len(s), n-1)
	}
	t := TagTree{N: n, Nodes: make([]tag.Value, n)}
	t.Nodes[0] = tag.Eps // slot 0 is unused; keep it canonical
	pos := 0
	for i := 1; 1<<(i-1) < n+1 && pos < len(s); i++ {
		w := 1 << (i - 1)
		level := t.Nodes[w : 2*w]
		bits := i - 1
		for j := 0; j < w; j++ {
			level[shuffle.BitReverse(j, bits)] = s[pos]
			pos++
		}
	}
	if err := t.Validate(); err != nil {
		return TagTree{}, err
	}
	return t, nil
}

// SplitSequence deals the tags following the head tag out to the two
// half-size networks (Fig. 10): rest[0], rest[2], ... form the upper
// sequence and rest[1], rest[3], ... the lower one. rest must have even
// length (it is seq[1:] for a sequence of odd length n-1).
func SplitSequence(rest []tag.Value) (upper, lower []tag.Value) {
	if len(rest)%2 != 0 {
		panic(fmt.Sprintf("mcast: SplitSequence on odd-length rest (%d tags)", len(rest)))
	}
	h := len(rest) / 2
	upper = make([]tag.Value, 0, h)
	lower = make([]tag.Value, 0, h)
	for i, v := range rest {
		if i%2 == 0 {
			upper = append(upper, v)
		} else {
			lower = append(lower, v)
		}
	}
	return upper, lower
}

// FormatSequence renders a tag sequence in the compact notation of the
// paper's examples (e.g. "00εαεεε").
func FormatSequence(s []tag.Value) string {
	var b strings.Builder
	for _, v := range s {
		b.WriteString(v.String())
	}
	return b.String()
}

// ParseSequenceString parses the compact notation produced by
// FormatSequence ('0', '1', 'α'/'a', 'ε'/'e').
func ParseSequenceString(n int, s string) (TagTree, error) {
	var tags []tag.Value
	for _, r := range s {
		switch r {
		case '0':
			tags = append(tags, tag.V0)
		case '1':
			tags = append(tags, tag.V1)
		case 'α', 'a':
			tags = append(tags, tag.Alpha)
		case 'ε', 'e':
			tags = append(tags, tag.Eps)
		default:
			return TagTree{}, fmt.Errorf("mcast: unknown tag character %q", r)
		}
	}
	return ParseSequence(n, tags)
}

// Sequences returns the routing-tag sequence of every input of the
// assignment (idle inputs get the all-ε sequence).
func (a Assignment) Sequences() ([][]tag.Value, error) {
	out := make([][]tag.Value, a.N)
	for i := range a.Dests {
		s, err := SequenceFromDests(a.N, a.Dests[i])
		if err != nil {
			return nil, fmt.Errorf("mcast: input %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}
