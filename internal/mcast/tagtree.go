package mcast

import (
	"fmt"

	"brsmn/internal/shuffle"
	"brsmn/internal/tag"
)

// TagTree is the complete binary tree of routing tags describing one
// multicast connection in an n x n BRSMN (Section 7.1). The tree has
// log n levels; the node for an address prefix carries the tag value that
// the connection presents at the binary splitting network reached through
// that prefix:
//
//	α — the destinations under this prefix have both 0 and 1 in the next
//	     address bit (the connection splits here)
//	0 — they all have 0 in the next bit
//	1 — they all have 1 in the next bit
//	ε — no destination has this prefix (empty multicast)
//
// Nodes are stored in heap order: Nodes[1] is the root, node k has
// children 2k and 2k+1, so level i (1-based) occupies indices
// [2^(i-1), 2^i). Nodes[0] is unused.
type TagTree struct {
	N     int
	Nodes []tag.Value
}

// Levels returns log2(N), the number of levels of the tree.
func (t TagTree) Levels() int { return shuffle.Log2(t.N) }

// Level returns the tags of level i (1-based, left to right), which has
// 2^(i-1) nodes.
func (t TagTree) Level(i int) []tag.Value {
	w := 1 << (i - 1)
	return t.Nodes[w : 2*w]
}

// Root returns the level-1 tag, which steers the connection through the
// outermost binary splitting network.
func (t TagTree) Root() tag.Value { return t.Nodes[1] }

// BuildTagTree constructs the tag tree of the multicast connection with
// the given destination set in an n-output network. An empty set yields
// the all-ε tree. Destinations must be distinct and in range.
func BuildTagTree(n int, dests []int) (TagTree, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return TagTree{}, fmt.Errorf("mcast: network size %d is not a power of two >= 2", n)
	}
	t := TagTree{N: n, Nodes: make([]tag.Value, n)}
	for i := range t.Nodes {
		t.Nodes[i] = tag.Eps
	}
	// hasPrefix[k] records whether any destination lies under heap node
	// k; index space doubled to include the virtual leaf level (single
	// outputs) at [n, 2n).
	hasPrefix := make([]bool, 2*n)
	for _, d := range dests {
		if d < 0 || d >= n {
			return TagTree{}, fmt.Errorf("mcast: destination %d out of range [0,%d)", d, n)
		}
		if hasPrefix[n+d] {
			return TagTree{}, fmt.Errorf("mcast: duplicate destination %d", d)
		}
		for k := n + d; k >= 1; k /= 2 {
			hasPrefix[k] = true
		}
	}
	// A node at level i has heap index k in [2^(i-1), 2^i); its children
	// (prefixes one bit longer) are 2k and 2k+1, possibly in the virtual
	// leaf level.
	for k := 1; k < n; k++ {
		left, right := hasPrefix[2*k], hasPrefix[2*k+1]
		switch {
		case left && right:
			t.Nodes[k] = tag.Alpha
		case left:
			t.Nodes[k] = tag.V0
		case right:
			t.Nodes[k] = tag.V1
		default:
			t.Nodes[k] = tag.Eps
		}
	}
	return t, nil
}

// Dests reconstructs the destination set encoded by the tree, in
// increasing order.
func (t TagTree) Dests() []int {
	n := t.N
	var out []int
	// Walk the virtual leaf level: output d is reached iff every node on
	// the path from the root points toward it.
	var walk func(k, lo, hi int)
	walk = func(k, lo, hi int) {
		if hi-lo == 1 {
			out = append(out, lo)
			return
		}
		mid := (lo + hi) / 2
		switch t.Nodes[k] {
		case tag.V0:
			walk(2*k, lo, mid)
		case tag.V1:
			walk(2*k+1, mid, hi)
		case tag.Alpha:
			walk(2*k, lo, mid)
			walk(2*k+1, mid, hi)
		}
	}
	walk(1, 0, n)
	return out
}

// Validate checks the structural invariants of Section 7.1: an α node has
// two non-ε children, a 0 (1) node has a non-ε left (right) child and an ε
// right (left) child, and an ε node has two ε children.
func (t TagTree) Validate() error {
	if !shuffle.IsPow2(t.N) || t.N < 2 {
		return fmt.Errorf("mcast: tag tree size %d is not a power of two >= 2", t.N)
	}
	if len(t.Nodes) != t.N {
		return fmt.Errorf("mcast: tag tree has %d node slots, want %d", len(t.Nodes), t.N)
	}
	for k := 1; k < t.N/2; k++ {
		l, r := t.Nodes[2*k], t.Nodes[2*k+1]
		switch t.Nodes[k] {
		case tag.Alpha:
			if l == tag.Eps || r == tag.Eps {
				return fmt.Errorf("mcast: α node %d has an ε child (%v, %v)", k, l, r)
			}
		case tag.V0:
			if l == tag.Eps || r != tag.Eps {
				return fmt.Errorf("mcast: 0 node %d needs (non-ε, ε) children, has (%v, %v)", k, l, r)
			}
		case tag.V1:
			if l != tag.Eps || r == tag.Eps {
				return fmt.Errorf("mcast: 1 node %d needs (ε, non-ε) children, has (%v, %v)", k, l, r)
			}
		case tag.Eps:
			if l != tag.Eps || r != tag.Eps {
				return fmt.Errorf("mcast: ε node %d has non-ε children (%v, %v)", k, l, r)
			}
		default:
			return fmt.Errorf("mcast: node %d holds non-tree tag %v", k, t.Nodes[k])
		}
	}
	for k := t.N / 2; k < t.N; k++ {
		if v := t.Nodes[k]; v != tag.V0 && v != tag.V1 && v != tag.Alpha && v != tag.Eps {
			return fmt.Errorf("mcast: node %d holds non-tree tag %v", k, t.Nodes[k])
		}
	}
	return nil
}

// Subtrees returns the left and right child trees (each for an n/2-output
// network). For a 2-output tree (a single level) it returns two 1-level
// virtual trees of size... it panics; callers stop recursing at N == 2.
func (t TagTree) Subtrees() (left, right TagTree) {
	n := t.N
	if n < 4 {
		panic("mcast: Subtrees on a single-level tree")
	}
	h := n / 2
	left = TagTree{N: h, Nodes: make([]tag.Value, h)}
	right = TagTree{N: h, Nodes: make([]tag.Value, h)}
	// Heap node k of the left subtree corresponds to node k + offset in
	// the full tree, level by level: full level i+1 (size 2^i) splits
	// into two halves of size 2^(i-1).
	for i := 1; i < shuffle.Log2(n); i++ {
		w := 1 << (i - 1) // nodes per level in the subtree
		full := t.Level(i + 1)
		copy(left.Nodes[w:2*w], full[:w])
		copy(right.Nodes[w:2*w], full[w:])
	}
	return left, right
}
