// Package netlist elaborates the 2x2 switching element down to logic
// gates — the level at which the paper's cost claims are stated ("uses
// O(n log^2 n) logic gates") — and simulates the resulting netlist. The
// data path is built from AND/OR/NOT gates: a 2-bit setting decoder and,
// per output, a 4:1 selector choosing between the two inputs under the
// four settings (parallel, cross, upper broadcast, lower broadcast). The
// tests verify the netlist agrees with the behavioral model (package
// swbox) on every input/setting combination, and that its gate count
// matches the per-switch constant the cost model charges.
package netlist

import (
	"fmt"

	"brsmn/internal/swbox"
)

// GateKind is a primitive logic gate.
type GateKind uint8

const (
	// AND is a 2-input AND gate.
	AND GateKind = iota
	// OR is a 2-input OR gate.
	OR
	// NOT is an inverter.
	NOT
)

// Gate is one netlist node: its kind and input signal ids (B unused for
// NOT). The gate's output signal id is its index + the primary-input
// offset.
type Gate struct {
	Kind GateKind
	A, B int
}

// Netlist is a combinational circuit: primary inputs 0..NumInputs-1,
// then one signal per gate in topological order.
type Netlist struct {
	NumInputs int
	Gates     []Gate
	// Outputs lists the signal ids of the primary outputs.
	Outputs []int
}

// signal id helpers during construction.
type builder struct {
	nl *Netlist
}

func (b *builder) gate(k GateKind, a, bb int) int {
	b.nl.Gates = append(b.nl.Gates, Gate{Kind: k, A: a, B: bb})
	return b.nl.NumInputs + len(b.nl.Gates) - 1
}
func (b *builder) and(a, bb int) int { return b.gate(AND, a, bb) }
func (b *builder) or(a, bb int) int  { return b.gate(OR, a, bb) }
func (b *builder) not(a int) int     { return b.gate(NOT, a, -1) }

// Eval simulates the netlist on the given primary-input bits.
func (nl *Netlist) Eval(inputs []uint8) ([]uint8, error) {
	if len(inputs) != nl.NumInputs {
		return nil, fmt.Errorf("netlist: %d inputs, want %d", len(inputs), nl.NumInputs)
	}
	sig := make([]uint8, nl.NumInputs+len(nl.Gates))
	copy(sig, inputs)
	for i, g := range nl.Gates {
		var v uint8
		switch g.Kind {
		case AND:
			v = sig[g.A] & sig[g.B]
		case OR:
			v = sig[g.A] | sig[g.B]
		case NOT:
			v = 1 - sig[g.A]
		default:
			return nil, fmt.Errorf("netlist: gate %d has invalid kind %d", i, g.Kind)
		}
		sig[nl.NumInputs+i] = v
	}
	out := make([]uint8, len(nl.Outputs))
	for i, s := range nl.Outputs {
		if s < 0 || s >= len(sig) {
			return nil, fmt.Errorf("netlist: output %d reads invalid signal %d", i, s)
		}
		out[i] = sig[s]
	}
	return out, nil
}

// NumGates returns the gate count.
func (nl *Netlist) NumGates() int { return len(nl.Gates) }

// SwitchDataPath elaborates the 2x2 switch data path for a `width`-bit
// payload per port. Primary inputs (in order): s1 s0 (the setting bits,
// s1s0 = 00 parallel, 01 cross, 10 upper broadcast, 11 lower broadcast),
// then in0[width], then in1[width]. Primary outputs: out0[width] then
// out1[width].
//
// Selection logic per the four settings:
//
//	out0 takes in1 when cross;            i.e. sel0 = ¬s1∧s0  (cross) or s1∧s0 (lbcast)
//	out1 takes in0 when cross or ubcast;  out0 takes in1 when cross or lbcast
//
// so sel0 = s0 (cross or lower broadcast pick in1 for out0... see the
// truth table in the tests) and sel1 = s0 XOR s1 decides out1's source.
func SwitchDataPath(width int) *Netlist {
	nl := &Netlist{NumInputs: 2 + 2*width}
	b := &builder{nl: nl}
	s1 := 0
	s0 := 1
	in0 := func(k int) int { return 2 + k }
	in1 := func(k int) int { return 2 + width + k }

	// Truth table of sources:
	//  s1 s0 | out0  out1
	//   0  0 | in0   in1   (parallel)
	//   0  1 | in1   in0   (cross)
	//   1  0 | in0   in0   (upper broadcast)
	//   1  1 | in1   in1   (lower broadcast)
	// => out0 source select = s0 (1 picks in1)
	//    out1 source select = ¬(s0 XOR s1) (1 picks in1)
	ns0 := b.not(s0)
	ns1 := b.not(s1)
	// xnor = (s0∧s1) ∨ (¬s0∧¬s1)
	t1 := b.and(s0, s1)
	t2 := b.and(ns0, ns1)
	sel1 := b.or(t1, t2) // 1 => out1 takes in1
	nsel1 := b.not(sel1)

	var out0, out1 []int
	for k := 0; k < width; k++ {
		// out0[k] = (¬s0 ∧ in0[k]) ∨ (s0 ∧ in1[k])
		a := b.and(ns0, in0(k))
		c := b.and(s0, in1(k))
		out0 = append(out0, b.or(a, c))
		// out1[k] = (¬sel1 ∧ in0[k]) ∨ (sel1 ∧ in1[k])
		d := b.and(nsel1, in0(k))
		e := b.and(sel1, in1(k))
		out1 = append(out1, b.or(d, e))
	}
	nl.Outputs = append(out0, out1...)
	return nl
}

// EncodeSetting maps a behavioral setting to the (s1, s0) control bits
// of SwitchDataPath.
func EncodeSetting(s swbox.Setting) (s1, s0 uint8, err error) {
	switch s {
	case swbox.Parallel:
		return 0, 0, nil
	case swbox.Cross:
		return 0, 1, nil
	case swbox.UpperBcast:
		return 1, 0, nil
	case swbox.LowerBcast:
		return 1, 1, nil
	}
	return 0, 0, fmt.Errorf("netlist: invalid setting %d", uint8(s))
}

// Apply runs two payload words through the elaborated switch under a
// behavioral setting, returning the two output words.
func Apply(nl *Netlist, width int, s swbox.Setting, a, b uint64) (uint64, uint64, error) {
	s1, s0, err := EncodeSetting(s)
	if err != nil {
		return 0, 0, err
	}
	in := make([]uint8, nl.NumInputs)
	in[0], in[1] = s1, s0
	for k := 0; k < width; k++ {
		in[2+k] = uint8(a >> k & 1)
		in[2+width+k] = uint8(b >> k & 1)
	}
	out, err := nl.Eval(in)
	if err != nil {
		return 0, 0, err
	}
	var o0, o1 uint64
	for k := 0; k < width; k++ {
		o0 |= uint64(out[k]) << k
		o1 |= uint64(out[width+k]) << k
	}
	return o0, o1, nil
}

// XOR is realized structurally in this netlist library as
// (a ∨ b) ∧ ¬(a ∧ b) when needed; the serial adder below builds it
// explicitly so every node stays a primitive gate.

// SeqNetlist is a clocked circuit: a combinational netlist whose first
// NumState primary inputs are driven by D flip-flops, which capture the
// signals listed in NextState on every clock edge.
type SeqNetlist struct {
	Comb *Netlist
	// NumState flip-flops occupy primary inputs [0, NumState).
	NumState int
	// NextState[k] is the combinational signal captured by flip-flop k.
	NextState []int
	state     []uint8
}

// Reset clears all flip-flops.
func (s *SeqNetlist) Reset() { s.state = make([]uint8, s.NumState) }

// Step applies one clock cycle: evaluate the combinational cloud with
// the current state plus the external inputs, latch the next state, and
// return the primary outputs.
func (s *SeqNetlist) Step(external []uint8) ([]uint8, error) {
	if s.state == nil {
		s.Reset()
	}
	if len(external)+s.NumState != s.Comb.NumInputs {
		return nil, fmt.Errorf("netlist: %d external inputs, want %d", len(external), s.Comb.NumInputs-s.NumState)
	}
	in := append(append([]uint8{}, s.state...), external...)
	sig := make([]uint8, s.Comb.NumInputs+len(s.Comb.Gates))
	copy(sig, in)
	for i, g := range s.Comb.Gates {
		var v uint8
		switch g.Kind {
		case AND:
			v = sig[g.A] & sig[g.B]
		case OR:
			v = sig[g.A] | sig[g.B]
		case NOT:
			v = 1 - sig[g.A]
		default:
			return nil, fmt.Errorf("netlist: gate %d has invalid kind %d", i, g.Kind)
		}
		sig[s.Comb.NumInputs+i] = v
	}
	out := make([]uint8, len(s.Comb.Outputs))
	for i, o := range s.Comb.Outputs {
		out[i] = sig[o]
	}
	for k, ns := range s.NextState {
		s.state[k] = sig[ns]
	}
	return out, nil
}

// SerialAdder elaborates the one-bit serial adder of Fig. 12: a full
// adder (sum = a XOR b XOR carry, carryOut = majority(a, b, carry))
// with the carry held in one flip-flop. External inputs: a, b. Output:
// the sum bit.
func SerialAdder() *SeqNetlist {
	nl := &Netlist{NumInputs: 3} // carry (state), a, b
	b := &builder{nl: nl}
	carry, a, bb := 0, 1, 2
	xor := func(x, y int) int {
		o := b.or(x, y)
		na := b.not(b.and(x, y))
		return b.and(o, na)
	}
	axb := xor(a, bb)
	sum := xor(axb, carry)
	// majority = (a∧b) ∨ (carry ∧ (a XOR b))
	maj := b.or(b.and(a, bb), b.and(carry, axb))
	nl.Outputs = []int{sum}
	return &SeqNetlist{Comb: nl, NumState: 1, NextState: []int{maj}}
}
