package netlist

import (
	"math/rand"
	"testing"

	"brsmn/internal/gates"
	"brsmn/internal/swbox"
)

// TestSwitchNetlistMatchesBehavior checks the elaborated data path
// against the behavioral switch for every setting and every input word
// pair, at several payload widths.
func TestSwitchNetlistMatchesBehavior(t *testing.T) {
	for _, width := range []int{1, 2, 4} {
		nl := SwitchDataPath(width)
		max := uint64(1) << width
		for _, s := range []swbox.Setting{swbox.Parallel, swbox.Cross, swbox.UpperBcast, swbox.LowerBcast} {
			for a := uint64(0); a < max; a++ {
				for b := uint64(0); b < max; b++ {
					g0, g1, err := Apply(nl, width, s, a, b)
					if err != nil {
						t.Fatal(err)
					}
					// Behavioral reference: route the words through
					// swbox.Apply with a duplicate-source split.
					w0, w1 := swbox.Apply(s, a, b, func(x uint64) (uint64, uint64) { return x, x })
					if g0 != w0 || g1 != w1 {
						t.Fatalf("width=%d setting=%v in=(%d,%d): netlist (%d,%d), behavioral (%d,%d)",
							width, s, a, b, g0, g1, w0, w1)
					}
				}
			}
		}
	}
}

// TestGateCountMatchesCostModel pins the elaborated 1-bit data path to
// the constant the cost model charges per switch data path.
func TestGateCountMatchesCostModel(t *testing.T) {
	nl := SwitchDataPath(1)
	if nl.NumGates() != gates.GatesPerSwitchDatapath {
		t.Fatalf("elaborated data path has %d gates; the cost model charges %d",
			nl.NumGates(), gates.GatesPerSwitchDatapath)
	}
	// Width-w scaling: 6 fixed decode gates + 6 per payload bit.
	for _, w := range []int{2, 8, 32} {
		if got, want := SwitchDataPath(w).NumGates(), 6+6*w; got != want {
			t.Errorf("width %d: %d gates, want %d", w, got, want)
		}
	}
}

// TestEvalValidation covers the simulator guards.
func TestEvalValidation(t *testing.T) {
	nl := SwitchDataPath(1)
	if _, err := nl.Eval(make([]uint8, 2)); err == nil {
		t.Error("Eval accepted wrong input width")
	}
	bad := &Netlist{NumInputs: 1, Gates: []Gate{{Kind: GateKind(9), A: 0}}, Outputs: []int{1}}
	if _, err := bad.Eval([]uint8{1}); err == nil {
		t.Error("Eval accepted invalid gate kind")
	}
	bad = &Netlist{NumInputs: 1, Outputs: []int{5}}
	if _, err := bad.Eval([]uint8{1}); err == nil {
		t.Error("Eval accepted dangling output")
	}
	if _, _, err := EncodeSetting(swbox.Setting(9)); err == nil {
		t.Error("EncodeSetting accepted invalid setting")
	}
	if _, _, err := Apply(nl, 1, swbox.Setting(9), 0, 0); err == nil {
		t.Error("Apply accepted invalid setting")
	}
}

// TestSerialAdderNetlist clocks the elaborated Fig. 12 adder against
// the behavioral gates.SerialAdder on random bit streams.
func TestSerialAdderNetlist(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	hw := SerialAdder()
	for trial := 0; trial < 50; trial++ {
		hw.Reset()
		var ref gates.SerialAdder
		for k := 0; k < 24; k++ {
			a := uint8(rng.Intn(2))
			b := uint8(rng.Intn(2))
			out, err := hw.Step([]uint8{a, b})
			if err != nil {
				t.Fatal(err)
			}
			if want := ref.Step(a, b); out[0] != want {
				t.Fatalf("trial %d bit %d: netlist %d, behavioral %d", trial, k, out[0], want)
			}
		}
	}
	// Full addition end to end.
	hw.Reset()
	x, y := 181, 77
	sum := 0
	for k := 0; k < 10; k++ {
		out, err := hw.Step([]uint8{uint8(x >> k & 1), uint8(y >> k & 1)})
		if err != nil {
			t.Fatal(err)
		}
		sum |= int(out[0]) << k
	}
	if sum != 258 {
		t.Fatalf("serial sum %d, want 258", sum)
	}
	if _, err := hw.Step([]uint8{1}); err == nil {
		t.Error("Step accepted wrong external width")
	}
}
