// Package netsim is a cycle-level simulator for the flattened BRSMN
// fabric: it streams *waves* of multicast assignments through the switch
// columns, one column per cycle per wave, the way the paper's Section 7
// describes the hardware operating in a pipelined fashion. Successive
// assignments separated by one cycle occupy disjoint columns at every
// instant — each wave's switch settings travel with it — so after the
// pipeline fills, one complete multicast assignment is delivered every
// cycle, while a non-pipelined fabric would take a full network depth
// per assignment.
package netsim

import (
	"fmt"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/swbox"
)

// Wave is one in-flight assignment: its column program, its cells, and
// its injection cycle.
type wave struct {
	assignment mcast.Assignment
	cols       []fabric.Column
	cells      []bsn.Cell
	inject     int
	done       bool
}

// Report is the outcome of a pipelined run.
type Report struct {
	N     int
	Depth int // columns per wave
	Waves int
	Gap   int // injection spacing in cycles
	// Makespan is the cycle at which the last wave completed.
	Makespan int
	// SequentialMakespan is what the same traffic would take without
	// pipelining (each assignment traverses the whole fabric alone).
	SequentialMakespan int
	// Deliveries[w][out] is the source delivered at output `out` by
	// wave w (-1 idle).
	Deliveries [][]int
	// MaxColumnsBusy is the peak number of columns active in one cycle
	// — the pipeline's achieved parallelism.
	MaxColumnsBusy int
	// Misdelivered counts outputs whose delivery differed from the
	// fault-free expectation. Always 0 for Pipeline, which fails on the
	// first mismatch; PipelineTampered reports instead of failing.
	Misdelivered int
}

// Speedup is the pipelining gain: sequential makespan over pipelined
// makespan.
func (r *Report) Speedup() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.SequentialMakespan) / float64(r.Makespan)
}

// Pipeline routes every assignment (all of the same size) through one
// shared fabric, injecting a new wave every `gap` cycles (gap >= 1), and
// simulates cycle by cycle. Every wave's deliveries are verified against
// its assignment. The per-cycle column occupancies are asserted
// disjoint: two waves never configure the same column at the same time.
func Pipeline(assignments []mcast.Assignment, gap int, eng rbn.Engine) (*Report, error) {
	return pipeline(assignments, gap, eng, nil)
}

// PipelineTampered is Pipeline with a fault-injection hook applied to
// every wave's column executions (the column index handed to the
// Tamperer is the wave's own program position, matching the fault
// coordinates of the flattened program). Misdeliveries caused by the
// faults are counted in Report.Misdelivered rather than failing the
// run; a fault that strands a cell mid-hand-off still errors.
func PipelineTampered(assignments []mcast.Assignment, gap int, eng rbn.Engine, t fabric.Tamperer) (*Report, error) {
	return pipeline(assignments, gap, eng, t)
}

func pipeline(assignments []mcast.Assignment, gap int, eng rbn.Engine, tamper fabric.Tamperer) (*Report, error) {
	if len(assignments) == 0 {
		return nil, fmt.Errorf("netsim: no assignments")
	}
	if gap < 1 {
		return nil, fmt.Errorf("netsim: injection gap %d must be >= 1", gap)
	}
	n := assignments[0].N
	nw, err := core.New(n, eng)
	if err != nil {
		return nil, err
	}
	waves := make([]*wave, len(assignments))
	depth := 0
	for w, a := range assignments {
		if a.N != n {
			return nil, fmt.Errorf("netsim: assignment %d has size %d, want %d", w, a.N, n)
		}
		res, err := nw.Route(a)
		if err != nil {
			return nil, fmt.Errorf("netsim: assignment %d: %w", w, err)
		}
		cols, err := fabric.Flatten(res)
		if err != nil {
			return nil, err
		}
		cells, err := bsn.CellsForAssignment(a)
		if err != nil {
			return nil, err
		}
		waves[w] = &wave{assignment: a, cols: cols, cells: cells, inject: w * gap}
		depth = len(cols)
	}

	rep := &Report{
		N: n, Depth: depth, Waves: len(waves), Gap: gap,
		SequentialMakespan: len(waves) * depth,
		Deliveries:         make([][]int, len(waves)),
	}
	remaining := len(waves)
	for cycle := 0; remaining > 0; cycle++ {
		busy := map[int]int{} // column index -> wave id
		for wid, wv := range waves {
			if wv.done || cycle < wv.inject {
				continue
			}
			pos := cycle - wv.inject
			if pos >= depth {
				continue
			}
			if prev, clash := busy[pos]; clash {
				return nil, fmt.Errorf("netsim: cycle %d: waves %d and %d both occupy column %d", cycle, prev, wid, pos)
			}
			busy[pos] = wid
			col := wv.cols[pos]
			settings := col.Settings
			if tamper != nil {
				settings = tamper.TamperSettings(pos, settings)
				if len(settings) != n/2 {
					return nil, fmt.Errorf("netsim: tamperer changed column %d to %d settings", pos, len(settings))
				}
			}
			next := make([]bsn.Cell, n)
			for sw, s := range settings {
				p0, p1 := col.Pair(sw)
				next[p0], next[p1] = swbox.Apply(s, wv.cells[p0], wv.cells[p1], bsn.SplitCell)
			}
			wv.cells = next
			if tamper != nil {
				tamper.TamperCells(pos, wv.cells)
			}
			if col.AdvanceAfter {
				for i := range wv.cells {
					if wv.cells[i].IsIdle() {
						continue
					}
					adv, err := bsn.Advance(wv.cells[i])
					if err != nil {
						return nil, fmt.Errorf("netsim: wave %d column %d: %w", wid, pos, err)
					}
					wv.cells[i] = adv
				}
			}
			if pos == depth-1 {
				wv.done = true
				remaining--
				rep.Makespan = cycle + 1
				out := make([]int, n)
				owner := wv.assignment.OutputOwner()
				for p, c := range wv.cells {
					out[p] = -1
					if !c.IsIdle() {
						out[p] = c.Source
					}
					if out[p] != owner[p] {
						if tamper == nil {
							return nil, fmt.Errorf("netsim: wave %d output %d delivered %d, want %d", wid, p, out[p], owner[p])
						}
						rep.Misdelivered++
					}
				}
				rep.Deliveries[wid] = out
			}
		}
		if len(busy) > rep.MaxColumnsBusy {
			rep.MaxColumnsBusy = len(busy)
		}
	}
	return rep, nil
}
