package netsim

import (
	"math/rand"
	"testing"

	"brsmn/internal/cost"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
	"brsmn/internal/workload"
	"brsmn/internal/xbar"
)

// TestPipelineDeliveriesMatchOracle checks every wave of a pipelined
// batch delivers exactly its assignment.
func TestPipelineDeliveriesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	for _, n := range []int{8, 32, 64} {
		as := make([]mcast.Assignment, 6)
		for i := range as {
			as[i] = workload.Random(rng, n, rng.Float64(), rng.Float64())
		}
		rep, err := Pipeline(as, 1, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		xb, err := xbar.New(n)
		if err != nil {
			t.Fatal(err)
		}
		for w, a := range as {
			want, err := xb.Route(a)
			if err != nil {
				t.Fatal(err)
			}
			for out := range want {
				if rep.Deliveries[w][out] != want[out] {
					t.Fatalf("n=%d wave %d output %d: %d, want %d", n, w, out, rep.Deliveries[w][out], want[out])
				}
			}
		}
	}
}

// TestPipelineTiming checks the makespan arithmetic: with gap g and W
// waves of depth D, the last wave completes at (W-1)g + D, and the
// speedup over sequential operation approaches D/g.
func TestPipelineTiming(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	n := 32
	for _, gap := range []int{1, 2, 5} {
		W := 8
		as := make([]mcast.Assignment, W)
		for i := range as {
			as[i] = workload.Random(rng, n, 0.7, 0.5)
		}
		rep, err := Pipeline(as, gap, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		D := cost.BRSMNDepth(n)
		if rep.Depth != D {
			t.Errorf("gap=%d: depth %d, want %d", gap, rep.Depth, D)
		}
		if want := (W-1)*gap + D; rep.Makespan != want {
			t.Errorf("gap=%d: makespan %d, want %d", gap, rep.Makespan, want)
		}
		if rep.SequentialMakespan != W*D {
			t.Errorf("gap=%d: sequential %d, want %d", gap, rep.SequentialMakespan, W*D)
		}
		if rep.Speedup() <= 1 {
			t.Errorf("gap=%d: speedup %.2f not > 1", gap, rep.Speedup())
		}
	}
}

// TestPipelineFillParallelism checks the pipeline actually overlaps: at
// gap 1 with more waves than depth, some cycle has depth columns busy.
func TestPipelineFillParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	n := 8
	D := cost.BRSMNDepth(n)
	as := make([]mcast.Assignment, 2*D)
	for i := range as {
		as[i] = workload.Random(rng, n, 0.8, 0.5)
	}
	rep, err := Pipeline(as, 1, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxColumnsBusy != D {
		t.Errorf("peak busy columns %d, want %d (full pipeline)", rep.MaxColumnsBusy, D)
	}
}

// TestPipelineValidation checks error paths.
func TestPipelineValidation(t *testing.T) {
	if _, err := Pipeline(nil, 1, rbn.Sequential); err == nil {
		t.Error("accepted empty batch")
	}
	a := workload.Broadcast(8, 0)
	if _, err := Pipeline([]mcast.Assignment{a}, 0, rbn.Sequential); err == nil {
		t.Error("accepted gap 0")
	}
	b := workload.Broadcast(16, 0)
	if _, err := Pipeline([]mcast.Assignment{a, b}, 1, rbn.Sequential); err == nil {
		t.Error("accepted mixed sizes")
	}
}
