package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bucket i counts observations <= bounds[i], with an implicit
// +Inf bucket, plus a running sum and count. Observe is lock-free — one
// atomic add on the bucket, one on the count, one CAS loop on the sum —
// so it is safe on serving hot paths.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sumMu  atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given strictly ascending
// upper bucket bounds. An empty or nil bounds slice yields a histogram
// with only the +Inf bucket.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the "le" bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumMu.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumMu.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the Prometheus base
// unit for latency series.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumMu.Load())
}

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf bucket. Intended for tests and snapshots.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Bounds returns the upper bucket bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// write renders the histogram's exposition lines. A labelled name like
// name{a="b"} folds the le label into the existing set.
func (h *Histogram) write(b *strings.Builder, name string) {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base = name[:i]
		labels = strings.TrimSuffix(name[i+1:], "}") + ","
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", base, labels, formatValue(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", base, suffix, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", base, suffix, h.count.Load())
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the standard shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// SecondsBuckets is the default latency bucket layout: 13 exponential
// buckets from 1µs to ~16s, wide enough for a cache hit and a cold
// n=4096 replan on the same series.
func SecondsBuckets() []float64 { return ExpBuckets(1e-6, 4, 13) }
