package obs

import (
	"strings"
	"testing"
)

func TestWithLabel(t *testing.T) {
	cases := []struct{ name, label, want string }{
		{"brsmn_groups", `shard="0"`, `brsmn_groups{shard="0"}`},
		{`brsmn_plan_cache_ops_total{op="hit"}`, `shard="3"`, `brsmn_plan_cache_ops_total{op="hit",shard="3"}`},
		{"brsmn_groups", "", "brsmn_groups"},
		{`x{a="b",c="d"}`, `s="1"`, `x{a="b",c="d",s="1"}`},
	}
	for _, tc := range cases {
		if got := WithLabel(tc.name, tc.label); got != tc.want {
			t.Errorf("WithLabel(%q, %q) = %q, want %q", tc.name, tc.label, got, tc.want)
		}
	}
}

// TestWithLabelSharding pins the registry behavior the sharded daemon
// depends on: two same-family series with different shard labels are
// distinct instruments under one HELP/TYPE header.
func TestWithLabelSharding(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter(WithLabel(`brsmn_test_ops_total{op="x"}`, `shard="0"`), "Test ops.")
	b := reg.Counter(WithLabel(`brsmn_test_ops_total{op="x"}`, `shard="1"`), "Test ops.")
	if a == b {
		t.Fatal("shard-labeled series collided into one instrument")
	}
	a.Inc()
	a.Inc()
	b.Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `brsmn_test_ops_total{op="x",shard="0"} 2`) ||
		!strings.Contains(text, `brsmn_test_ops_total{op="x",shard="1"} 1`) {
		t.Fatalf("per-shard series not rendered:\n%s", text)
	}
	if strings.Count(text, "# TYPE brsmn_test_ops_total") != 1 {
		t.Fatalf("family header duplicated:\n%s", text)
	}
}
