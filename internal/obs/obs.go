// Package obs is the daemon's observability substrate: a dependency-free
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms with Prometheus text exposition) plus a per-route trace
// recorder (trace.go) that stamps each planning stage with durations and
// the paper-level quantities — levels swept, α-splits eliminated, switch
// settings emitted.
//
// The package deliberately implements the minimal slice of the
// Prometheus text format (HELP/TYPE headers, counter/gauge/histogram
// families, inline label sets) rather than pulling in a client library:
// the serving hot path must stay allocation-free, and every instrument
// here is a handful of machine words updated with sync/atomic.
//
// Series are identified by their full exposition name, label set
// included, e.g.
//
//	brsmn_plan_cache_ops_total{op="hit"}
//
// The family name (everything before '{') groups series under one
// HELP/TYPE header. Registering the same series name twice returns the
// same instrument, so call sites may look instruments up lazily.
//
// Every instrument is nil-receiver safe: methods on a nil *Counter,
// *Gauge or *Histogram are no-ops, so subsystems wire metrics through
// optional pointers without guarding every update site.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. It additionally tracks its
// own high-water mark (see Max) for occupancy-style instruments.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
	g.raise(n)
}

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.raise(g.v.Add(n))
}

func (g *Gauge) raise(n int64) {
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the largest value the gauge has held.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// kind is the Prometheus exposition type of a series.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered exposition unit: a scalar sample read at
// scrape time, or a whole histogram family.
type series struct {
	name    string // full series name, labels included
	kind    kind
	read    func() float64 // scalar series
	hist    *Histogram     // histogram series
	counter *Counter       // backing instrument when created via Counter
	gauge   *Gauge         // backing instrument when created via Gauge
}

// Registry holds named instruments and renders them in Prometheus text
// format. It is safe for concurrent use; the zero value is not usable —
// construct with NewRegistry.
type Registry struct {
	mu     sync.Mutex
	order  []string // registration order of series names
	by     map[string]*series
	help   map[string]string // family -> help
	common string           // rendered label pair folded into every series at scrape
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: map[string]*series{}, help: map[string]string{}}
}

// SetCommonLabel installs one rendered label pair (e.g. `node="a"`) that
// WritePrometheus folds into every series at exposition time — the
// cluster-mode convention: each daemon stamps its node ID onto all of
// its series, so scrapes from several nodes merge into one corpus
// without collision, exactly like the shard="k" labels do within one
// process. Registration names are untouched (instruments are still
// looked up by their unlabeled names); only the rendered output changes.
// An empty label restores unlabeled output.
func (r *Registry) SetCommonLabel(label string) {
	r.mu.Lock()
	r.common = label
	r.mu.Unlock()
}

// WithLabel injects one rendered label pair (e.g. `shard="3"`) into a
// series name, folding it into an existing label set or opening a new
// one. An empty label returns the name unchanged, so call sites can
// thread an optional per-instance label through unconditionally:
//
//	WithLabel(`brsmn_plan_cache_ops_total{op="hit"}`, `shard="0"`)
//	  -> brsmn_plan_cache_ops_total{op="hit",shard="0"}
//	WithLabel("brsmn_groups", `shard="0"`) -> brsmn_groups{shard="0"}
//
// The family name is untouched, so all instances share one HELP/TYPE
// header — the sharded-daemon convention for per-shard series.
func WithLabel(name, label string) string {
	if label == "" {
		return name
	}
	if i := strings.LastIndexByte(name, '}'); i >= 0 {
		return name[:i] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// family is the series name with any label set stripped — the unit the
// HELP/TYPE headers apply to.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// register returns the series under name, creating it from blank when
// absent. fill populates a fresh series; re-registration under a
// different kind panics (a programming error, like Prometheus clients).
func (r *Registry) register(name, help string, k kind, fill func(*series)) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.by[name]; ok {
		if s.kind != k {
			panic(fmt.Sprintf("obs: series %q re-registered as %v (was %v)", name, k, s.kind))
		}
		return s
	}
	s := &series{name: name, kind: k}
	fill(s)
	r.by[name] = s
	r.order = append(r.order, name)
	if f := family(name); r.help[f] == "" {
		r.help[f] = help
	}
	return s
}

// Counter returns the counter registered under name (labels included),
// creating it on first use. Looking up a series registered via
// CounterFunc returns a detached instrument that does not feed it.
func (r *Registry) Counter(name, help string) *Counter {
	s := r.register(name, help, kindCounter, func(s *series) {
		s.counter = &Counter{}
		s.read = s.counter.Value64
	})
	if s.counter == nil {
		return &Counter{}
	}
	return s.counter
}

// Value64 adapts Value to the scrape-time sample signature.
func (c *Counter) Value64() float64 { return float64(c.Value()) }

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	s := r.register(name, help, kindGauge, func(s *series) {
		s.gauge = &Gauge{}
		s.read = s.gauge.Value64
	})
	if s.gauge == nil {
		return &Gauge{}
	}
	return s.gauge
}

// Value64 adapts Value to the scrape-time sample signature.
func (g *Gauge) Value64() float64 { return float64(g.Value()) }

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for subsystems that already keep their own atomic counters.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, func(s *series) { s.read = fn })
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, func(s *series) { s.read = fn })
}

// Histogram returns the histogram registered under name with the given
// ascending upper bucket bounds, creating it on first use. The +Inf
// bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	s := r.register(name, help, kindHistogram, func(s *series) { s.hist = NewHistogram(bounds) })
	return s.hist
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format, families sorted by name, series within a family in
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	snap := make(map[string]*series, len(names))
	for k, v := range r.by {
		snap[k] = v
	}
	helps := make(map[string]string, len(r.help))
	for k, v := range r.help {
		helps[k] = v
	}
	common := r.common
	r.mu.Unlock()

	// Group series by family, keeping registration order inside each.
	fams := make(map[string][]*series)
	var famOrder []string
	for _, n := range names {
		s := snap[n]
		f := family(n)
		if _, ok := fams[f]; !ok {
			famOrder = append(famOrder, f)
		}
		fams[f] = append(fams[f], s)
	}
	sort.Strings(famOrder)

	var b strings.Builder
	for _, f := range famOrder {
		ss := fams[f]
		if h := helps[f]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f, ss[0].kind)
		for _, s := range ss {
			name := WithLabel(s.name, common)
			if s.hist != nil {
				s.hist.write(&b, name)
				continue
			}
			fmt.Fprintf(&b, "%s %s\n", name, formatValue(s.read()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatValue renders a sample the way Prometheus expects: integers
// without an exponent, everything else via %g.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
