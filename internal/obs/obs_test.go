package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	if g.Max() != 7 {
		t.Fatalf("gauge max = %d, want 7", g.Max())
	}
	g.Add(10)
	if g.Max() != 14 {
		t.Fatalf("gauge max after raise = %d, want 14", g.Max())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to a bound lands in that bound's bucket, the next representable
// value above it in the following bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	h.Observe(0.5)                      // bucket le=1
	h.Observe(1)                        // le=1: boundary is inclusive
	h.Observe(math.Nextafter(1, 2))     // le=10
	h.Observe(10)                       // le=10
	h.Observe(math.Nextafter(100, 200)) // +Inf
	h.Observe(1e9)                      // +Inf
	got := h.BucketCounts()
	want := []uint64{2, 2, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if want := 0.5 + 1 + math.Nextafter(1, 2) + 10 + math.Nextafter(100, 200) + 1e9; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds accepted")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 4, 4)
	want := []float64{1e-6, 4e-6, 1.6e-5, 6.4e-5}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if got := SecondsBuckets(); len(got) != 13 || got[0] != 1e-6 {
		t.Fatalf("SecondsBuckets = %v", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter(`ops_total{op="hit"}`, "ops")
	c2 := r.Counter(`ops_total{op="hit"}`, "ops")
	if c1 != c2 {
		t.Fatal("same series name must return the same counter")
	}
	c1.Inc()
	if c2.Value() != 1 {
		t.Fatal("instruments not shared")
	}
	g1 := r.Gauge("depth", "d")
	g2 := r.Gauge("depth", "d")
	if g1 != g2 {
		t.Fatal("same series name must return the same gauge")
	}
	h1 := r.Histogram("lat_seconds", "l", []float64{1})
	h2 := r.Histogram("lat_seconds", "l", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("same series name must return the same histogram")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch accepted")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// HELP/TYPE once per family, label sets preserved, histogram buckets
// cumulative with fused le labels, families sorted by name.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	hits := r.Counter(`brsmn_cache_ops_total{op="hit"}`, "Plan cache operations.")
	miss := r.Counter(`brsmn_cache_ops_total{op="miss"}`, "Plan cache operations.")
	g := r.Gauge("brsmn_groups", "Registered groups.")
	h := r.Histogram("brsmn_epoch_seconds", "Epoch duration.", []float64{0.001, 0.01})
	r.GaugeFunc("brsmn_busy_workers", "Busy sweep workers.", func() float64 { return 2.5 })

	hits.Add(3)
	miss.Inc()
	g.Set(7)
	h.Observe(0.001) // le=0.001 (boundary inclusive)
	h.Observe(0.005) // le=0.01
	h.Observe(5)     // +Inf

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP brsmn_busy_workers Busy sweep workers.
# TYPE brsmn_busy_workers gauge
brsmn_busy_workers 2.5
# HELP brsmn_cache_ops_total Plan cache operations.
# TYPE brsmn_cache_ops_total counter
brsmn_cache_ops_total{op="hit"} 3
brsmn_cache_ops_total{op="miss"} 1
# HELP brsmn_epoch_seconds Epoch duration.
# TYPE brsmn_epoch_seconds histogram
brsmn_epoch_seconds_bucket{le="0.001"} 1
brsmn_epoch_seconds_bucket{le="0.01"} 2
brsmn_epoch_seconds_bucket{le="+Inf"} 3
brsmn_epoch_seconds_sum 5.006
brsmn_epoch_seconds_count 3
# HELP brsmn_groups Registered groups.
# TYPE brsmn_groups gauge
brsmn_groups 7
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestLabelledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat_seconds{stage="scatter"}`, "Latency.", []float64{1})
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{stage="scatter",le="1"} 1`,
		`lat_seconds_bucket{stage="scatter",le="+Inf"} 1`,
		`lat_seconds_sum{stage="scatter"} 0.5`,
		`lat_seconds_count{stage="scatter"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentInstruments hammers every instrument type from many
// goroutines (run under -race in CI) and checks conservation.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", SecondsBuckets())
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%13) * 1e-6)
				if i%97 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	total := uint64(0)
	for _, b := range h.BucketCounts() {
		total += b
	}
	if total != h.Count() {
		t.Fatalf("bucket total %d != count %d", total, h.Count())
	}
}
