package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage is one extra named span appended to a RouteTrace by layers above
// the planner (plan flattening, codec encoding, cache interaction).
type Stage struct {
	Name       string `json:"name"`
	DurationNs int64  `json:"durationNs"`
}

// RouteTrace is the record of one traced planning run: per-stage
// durations plus the paper-level quantities of the route — the levels
// swept, the α-splits the scatter networks eliminated, the idle (ε)
// inputs, and the switch settings emitted (Yang & Wang's O(n log² n)
// gate / O(log² n) routing-time accounting, Section 7).
//
// The planner's recursion may run sub-BRSMNs concurrently, so the stage
// fields are accumulated with atomic adds and represent CPU time summed
// across the recursion, not wall-clock; TotalNs is wall-clock.
type RouteTrace struct {
	// Key identifies what was routed — a group ID for groupd replans.
	Key  string    `json:"key,omitempty"`
	N    int       `json:"n"`
	When time.Time `json:"when"`
	// TotalNs is the wall-clock duration of the whole planning run.
	TotalNs int64 `json:"totalNs"`

	// Stage durations, CPU-time summed across the (possibly parallel)
	// sub-BRSMN recursion.
	ScatterNs int64 `json:"scatterNs"` // BSN pass 1: α-elimination sweeps
	QuasiNs   int64 `json:"quasiNs"`   // BSN pass 2: quasisort sweeps
	AdvanceNs int64 `json:"advanceNs"` // routing-tag sequence advancement
	DeliverNs int64 `json:"deliverNs"` // final 2x2 column realization
	CloneNs   int64 `json:"cloneNs"`   // result detach (Result.Clone)

	// Paper-level quantities.
	LevelsSwept int `json:"levelsSwept"` // log2(n) recursion levels
	BSNs        int `json:"bsns"`        // sub-BSN instances routed
	AlphaSplits int `json:"alphaSplits"` // broadcast switches set (α-eliminations)
	IdleInputs  int `json:"idleInputs"`  // ε inputs entering the network
	Fanout      int `json:"fanout"`      // total (source, output) connections
	Settings    int `json:"settings"`    // switch settings emitted, final column included
	Columns     int `json:"columns"`     // physical column depth of the emitted program

	// Extra carries spans appended by higher layers (flatten, encode…).
	Extra []Stage `json:"extra,omitempty"`
}

// AddNs atomically accumulates d into the stage field at p — the helper
// the parallel recursion uses.
func AddNs(p *int64, d time.Duration) { atomic.AddInt64(p, int64(d)) }

// AddStage appends a named span. Not safe for concurrent use; call it
// only from the single goroutine that owns the trace.
func (t *RouteTrace) AddStage(name string, d time.Duration) {
	t.Extra = append(t.Extra, Stage{Name: name, DurationNs: int64(d)})
}

// TraceRecorder keeps the last completed RouteTrace per key and decides,
// via 1-in-sample counting per key, which planning runs to trace at all.
// A nil recorder is valid and never samples, so call sites wire it
// through optional pointers. Safe for concurrent use.
type TraceRecorder struct {
	sample uint64 // trace every sample-th run per key; 0 disables

	mu    sync.RWMutex
	last  map[string]*RouteTrace
	seen  map[string]*atomic.Uint64
	total atomic.Uint64 // traces recorded
}

// NewTraceRecorder returns a recorder tracing every sample-th planning
// run per key; sample <= 0 disables sampling (Last still serves traces
// recorded by explicit callers).
func NewTraceRecorder(sample int) *TraceRecorder {
	if sample < 0 {
		sample = 0
	}
	return &TraceRecorder{
		sample: uint64(sample),
		last:   map[string]*RouteTrace{},
		seen:   map[string]*atomic.Uint64{},
	}
}

// ShouldSample reports whether the next planning run for key should be
// traced, advancing the per-key counter. The first run of every key is
// always sampled (so /trace/{key} has data as soon as a key exists).
func (r *TraceRecorder) ShouldSample(key string) bool {
	if r == nil || r.sample == 0 {
		return false
	}
	r.mu.RLock()
	c := r.seen[key]
	r.mu.RUnlock()
	if c == nil {
		r.mu.Lock()
		if c = r.seen[key]; c == nil {
			c = &atomic.Uint64{}
			r.seen[key] = c
		}
		r.mu.Unlock()
	}
	return (c.Add(1)-1)%r.sample == 0
}

// Record stores t as the last trace for t.Key.
func (r *TraceRecorder) Record(t *RouteTrace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.last[t.Key] = t
	r.mu.Unlock()
	r.total.Add(1)
}

// Last returns the most recent trace recorded for key, or nil.
func (r *TraceRecorder) Last(key string) *RouteTrace {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.last[key]
}

// Keys returns the keys with a recorded trace, unordered.
func (r *TraceRecorder) Keys() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.last))
	for k := range r.last {
		out = append(out, k)
	}
	return out
}

// Total returns the number of traces recorded.
func (r *TraceRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}
