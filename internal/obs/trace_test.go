package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceRecorderSampling(t *testing.T) {
	r := NewTraceRecorder(3)
	got := 0
	for i := 0; i < 9; i++ {
		if r.ShouldSample("g1") {
			got++
		}
	}
	if got != 3 {
		t.Fatalf("sampled %d of 9 with sample=3, want 3", got)
	}
	// First run of a fresh key always samples.
	if !r.ShouldSample("g2") {
		t.Fatal("first run of a new key not sampled")
	}
	// Disabled recorders never sample.
	if NewTraceRecorder(0).ShouldSample("g") {
		t.Fatal("sample=0 recorder sampled")
	}
	var nilRec *TraceRecorder
	if nilRec.ShouldSample("g") {
		t.Fatal("nil recorder sampled")
	}
	nilRec.Record(&RouteTrace{Key: "g"}) // must not panic
	if nilRec.Last("g") != nil || nilRec.Keys() != nil || nilRec.Total() != 0 {
		t.Fatal("nil recorder must read empty")
	}
}

func TestTraceRecorderLastWins(t *testing.T) {
	r := NewTraceRecorder(1)
	r.Record(&RouteTrace{Key: "g", TotalNs: 1})
	r.Record(&RouteTrace{Key: "g", TotalNs: 2})
	if tr := r.Last("g"); tr == nil || tr.TotalNs != 2 {
		t.Fatalf("Last = %+v, want TotalNs 2", r.Last("g"))
	}
	if r.Last("missing") != nil {
		t.Fatal("missing key must return nil")
	}
	if len(r.Keys()) != 1 || r.Total() != 2 {
		t.Fatalf("keys %v total %d", r.Keys(), r.Total())
	}
}

// TestTraceRecorderConcurrent drives sampling and recording for many
// keys from many goroutines (meaningful under -race).
func TestTraceRecorderConcurrent(t *testing.T) {
	r := NewTraceRecorder(2)
	keys := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keys[(i+w)%len(keys)]
				if r.ShouldSample(k) {
					r.Record(&RouteTrace{Key: k, N: 8, When: time.Unix(0, int64(i))})
				}
				_ = r.Last(k)
				_ = r.Keys()
			}
		}(w)
	}
	wg.Wait()
	for _, k := range keys {
		if r.Last(k) == nil {
			t.Fatalf("key %q has no trace after concurrent run", k)
		}
	}
}

func TestRouteTraceJSONShape(t *testing.T) {
	tr := &RouteTrace{Key: "g", N: 8, TotalNs: 42, LevelsSwept: 3}
	tr.AddStage("flatten", 5*time.Millisecond)
	blob, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back RouteTrace
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key != "g" || back.TotalNs != 42 || len(back.Extra) != 1 || back.Extra[0].Name != "flatten" {
		t.Fatalf("round trip = %+v", back)
	}
}
