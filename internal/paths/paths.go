// Package paths extracts the multicast trees a routed BRSMN embeds in
// its fabric and verifies the paper's headline structural property: every
// multicast assignment is realized over *edge-disjoint trees* — no fabric
// link is shared by two different connections, and each connection's
// links form a tree rooted at its input that fans out exactly to its
// destination set.
//
// The extraction walks the flattened column program (package fabric),
// recording for every connection the set of (column, link) edges its
// cells occupy. The checks then assert (1) pairwise edge-disjointness
// across connections, (2) per-connection tree shape (the edge count grows
// by exactly one per broadcast), and (3) the leaves are the destination
// set.
package paths

import (
	"fmt"
	"sort"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/swbox"
)

// Edge is one occupied fabric link: the column the cell is about to
// enter is Col; Link is the wire position the cell occupies after that
// column (plus Col = -1 edges for the input links).
type Edge struct {
	Col  int
	Link int
}

// Tree is one connection's embedded multicast tree.
type Tree struct {
	Source int
	Edges  []Edge
	// Outputs are the network outputs the connection reached, sorted.
	Outputs []int
}

// Extract routes nothing itself: given a routed result, it flattens the
// column program, replays the input cells and records per-connection
// link occupancy.
func Extract(a mcast.Assignment, res *core.Result) ([]Tree, error) {
	cols, err := fabric.Flatten(res)
	if err != nil {
		return nil, err
	}
	cells, err := bsn.CellsForAssignment(a)
	if err != nil {
		return nil, err
	}
	n := a.N

	edges := map[int][]Edge{} // source -> edges
	for pos, c := range cells {
		if !c.IsIdle() {
			edges[c.Source] = append(edges[c.Source], Edge{Col: -1, Link: pos})
		}
	}
	cur := cells
	for ci, col := range cols {
		next := make([]bsn.Cell, n)
		for w, s := range col.Settings {
			p0, p1 := col.Pair(w)
			next[p0], next[p1] = swbox.Apply(s, cur[p0], cur[p1], bsn.SplitCell)
		}
		for pos, c := range next {
			if !c.IsIdle() {
				edges[c.Source] = append(edges[c.Source], Edge{Col: ci, Link: pos})
			}
		}
		if col.AdvanceAfter {
			for i := range next {
				if next[i].IsIdle() {
					continue
				}
				adv, err := bsn.Advance(next[i])
				if err != nil {
					return nil, fmt.Errorf("paths: column %d: %w", ci, err)
				}
				next[i] = adv
			}
		}
		cur = next
	}

	var trees []Tree
	for src, es := range edges {
		tr := Tree{Source: src, Edges: es}
		for pos, c := range cur {
			if !c.IsIdle() && c.Source == src {
				tr.Outputs = append(tr.Outputs, pos)
			}
		}
		sort.Ints(tr.Outputs)
		trees = append(trees, tr)
	}
	sort.Slice(trees, func(i, j int) bool { return trees[i].Source < trees[j].Source })
	return trees, nil
}

// VerifyEdgeDisjoint checks that no (column, link) edge appears in two
// trees.
func VerifyEdgeDisjoint(trees []Tree) error {
	owner := map[Edge]int{}
	for _, tr := range trees {
		for _, e := range tr.Edges {
			if prev, taken := owner[e]; taken && prev != tr.Source {
				return fmt.Errorf("paths: edge (col %d, link %d) shared by connections %d and %d",
					e.Col, e.Link, prev, tr.Source)
			}
			owner[e] = tr.Source
		}
	}
	return nil
}

// VerifyTreeShape checks each connection's occupancy is tree-shaped: at
// every column boundary the connection occupies some number of links,
// that number never decreases, and the total edge count equals
// Σ_columns (copies alive after that column) + 1 — i.e. copies are only
// ever created, never merged or dropped, ending at exactly the fanout.
func VerifyTreeShape(a mcast.Assignment, trees []Tree, numCols int) error {
	for _, tr := range trees {
		perCol := make([]int, numCols+1) // index 0 = input links (col -1)
		for _, e := range tr.Edges {
			perCol[e.Col+1]++
		}
		if perCol[0] != 1 {
			return fmt.Errorf("paths: connection %d has %d roots", tr.Source, perCol[0])
		}
		prev := 1
		for ci := 1; ci <= numCols; ci++ {
			if perCol[ci] < prev {
				return fmt.Errorf("paths: connection %d shrinks from %d to %d copies at column %d",
					tr.Source, prev, perCol[ci], ci-1)
			}
			prev = perCol[ci]
		}
		want := len(a.Dests[tr.Source])
		if prev != want {
			return fmt.Errorf("paths: connection %d ends with %d copies, fanout is %d", tr.Source, prev, want)
		}
		if len(tr.Outputs) != want {
			return fmt.Errorf("paths: connection %d reached %d outputs, fanout is %d", tr.Source, len(tr.Outputs), want)
		}
		for k, out := range tr.Outputs {
			if out != a.Dests[tr.Source][k] {
				return fmt.Errorf("paths: connection %d reached output %d, destination set is %v",
					tr.Source, out, a.Dests[tr.Source])
			}
		}
	}
	return nil
}

// VerifyAll extracts and runs both checks for a routed assignment.
func VerifyAll(a mcast.Assignment, res *core.Result) ([]Tree, error) {
	trees, err := Extract(a, res)
	if err != nil {
		return nil, err
	}
	if err := VerifyEdgeDisjoint(trees); err != nil {
		return nil, err
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		return nil, err
	}
	if err := VerifyTreeShape(a, trees, len(cols)); err != nil {
		return nil, err
	}
	return trees, nil
}

// TotalEdges sums the edge counts over all trees — the fabric link-slots
// the assignment consumes, for utilization reporting.
func TotalEdges(trees []Tree) int {
	total := 0
	for _, tr := range trees {
		total += len(tr.Edges)
	}
	return total
}
