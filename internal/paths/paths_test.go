package paths

import (
	"math/rand"
	"testing"

	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/workload"
)

// TestEdgeDisjointTrees verifies the paper's structural claim on random
// traffic across sizes: every routed assignment embeds pairwise
// edge-disjoint trees that fan out exactly to the destination sets.
func TestEdgeDisjointTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(230))
	for _, n := range []int{4, 8, 32, 128} {
		for trial := 0; trial < 15; trial++ {
			a := workload.Random(rng, n, rng.Float64(), rng.Float64())
			res, err := core.Route(a)
			if err != nil {
				t.Fatal(err)
			}
			trees, err := VerifyAll(a, res)
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, a, err)
			}
			if len(trees) != a.ActiveInputs() {
				t.Fatalf("n=%d: %d trees for %d active inputs", n, len(trees), a.ActiveInputs())
			}
		}
	}
}

// TestBroadcastTreeShape pins the extreme: a full broadcast's tree
// spans every output and consumes one edge slot per link per column it
// has reached.
func TestBroadcastTreeShape(t *testing.T) {
	n := 16
	a := workload.Broadcast(n, 5)
	res, err := core.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := VerifyAll(a, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 {
		t.Fatalf("%d trees", len(trees))
	}
	tr := trees[0]
	if tr.Source != 5 || len(tr.Outputs) != n {
		t.Fatalf("tree %+v", tr)
	}
	// The tree's final column occupies all n links.
	cols, err := fabric.Flatten(res)
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	for _, e := range tr.Edges {
		if e.Col == len(cols)-1 {
			last++
		}
	}
	if last != n {
		t.Fatalf("final column occupancy %d, want %d", last, n)
	}
}

// TestPermutationTreesArePaths checks unicast trees have exactly one
// link per column.
func TestPermutationTreesArePaths(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	n := 32
	a := workload.Permutation(rng, n)
	res, err := core.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := VerifyAll(a, res)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trees {
		if len(tr.Edges) != len(cols)+1 {
			t.Fatalf("unicast connection %d occupies %d edges, want %d", tr.Source, len(tr.Edges), len(cols)+1)
		}
	}
	if TotalEdges(trees) != n*(len(cols)+1) {
		t.Fatalf("total edges %d", TotalEdges(trees))
	}
}

// TestVerifyEdgeDisjointCatchesSharing is the failure-injection test:
// hand-built overlapping trees must be rejected.
func TestVerifyEdgeDisjointCatchesSharing(t *testing.T) {
	trees := []Tree{
		{Source: 0, Edges: []Edge{{Col: 2, Link: 5}}},
		{Source: 1, Edges: []Edge{{Col: 2, Link: 5}}},
	}
	if err := VerifyEdgeDisjoint(trees); err == nil {
		t.Error("shared edge accepted")
	}
	trees[1].Edges[0].Link = 6
	if err := VerifyEdgeDisjoint(trees); err != nil {
		t.Errorf("disjoint trees rejected: %v", err)
	}
}

// TestVerifyTreeShapeCatchesCorruption checks shape violations are
// rejected.
func TestVerifyTreeShapeCatchesCorruption(t *testing.T) {
	a := workload.Broadcast(4, 0)
	// Two roots.
	bad := []Tree{{Source: 0, Edges: []Edge{{-1, 0}, {-1, 1}}, Outputs: []int{0, 1, 2, 3}}}
	if err := VerifyTreeShape(a, bad, 2); err == nil {
		t.Error("two-root tree accepted")
	}
	// Shrinking copy count.
	bad = []Tree{{Source: 0, Edges: []Edge{{-1, 0}, {0, 0}, {0, 1}, {1, 0}}, Outputs: []int{0, 1, 2, 3}}}
	if err := VerifyTreeShape(a, bad, 2); err == nil {
		t.Error("shrinking tree accepted")
	}
	// Wrong leaf count.
	bad = []Tree{{Source: 0, Edges: []Edge{{-1, 0}, {0, 0}, {1, 0}}, Outputs: []int{0}}}
	if err := VerifyTreeShape(a, bad, 2); err == nil {
		t.Error("under-fanout tree accepted")
	}
}
