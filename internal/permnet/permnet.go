// Package permnet implements the self-routing permutation network that
// the BRSMN degenerates to on unicast traffic — the design of Cheng &
// Chen [14] that the paper builds on. For a (partial) permutation no tag
// is ever α, so the scatter pass of every binary splitting network is
// unnecessary: each level needs only an ε-divide + bit-sorting pass on
// the current destination bit. The network is therefore half the BRSMN's
// cost — the ablation quantified in the benchmarks.
package permnet

import (
	"fmt"

	"brsmn/internal/rbn"
	"brsmn/internal/shuffle"
	"brsmn/internal/tag"
)

// Result records a routed permutation: per-output sources and the
// composed reverse-banyan plan of each level (level k reconfigures
// stages [0, log2(n)-k) of the level's blocks).
type Result struct {
	N         int
	OutSource []int
	Levels    []*rbn.Plan
}

// item is a routed connection.
type item struct {
	src, dest int // dest < 0 marks an idle slot
}

// Route realizes a (partial) permutation: perm[i] is the destination of
// input i or negative for idle. It returns the per-output sources
// (OutSource[d] = i iff perm[i] = d) after verifying them.
func Route(perm []int, eng rbn.Engine) (*Result, error) {
	n := len(perm)
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("permnet: size %d is not a power of two >= 2", n)
	}
	m := shuffle.Log2(n)
	seen := make([]bool, n)
	items := make([]item, n)
	for i, d := range perm {
		if d < 0 {
			items[i] = item{src: -1, dest: -1}
			continue
		}
		if d >= n {
			return nil, fmt.Errorf("permnet: input %d destination %d out of range", i, d)
		}
		if seen[d] {
			return nil, fmt.Errorf("permnet: destination %d assigned twice", d)
		}
		seen[d] = true
		items[i] = item{src: i, dest: d}
	}

	res := &Result{N: n, OutSource: make([]int, n)}
	for k := 0; k < m; k++ {
		size := n >> k
		bit := m - 1 - k
		full := rbn.NewPlan(n)
		for off := 0; off < n; off += size {
			blockTags := make([]tag.Value, size)
			for i, it := range items[off : off+size] {
				switch {
				case it.dest < 0:
					blockTags[i] = tag.Eps
				case it.dest>>bit&1 == 0:
					blockTags[i] = tag.V0
				default:
					blockTags[i] = tag.V1
				}
			}
			sub, _, err := eng.QuasisortPlan(size, blockTags)
			if err != nil {
				return nil, fmt.Errorf("permnet: level %d block %d: %w", k, off/size, err)
			}
			for j := 0; j < sub.M; j++ {
				copy(full.Stages[j][off/2:off/2+size/2], sub.Stages[j])
			}
		}
		var err error
		items, err = rbn.Apply(full, items, nil)
		if err != nil {
			return nil, err
		}
		res.Levels = append(res.Levels, full)
	}

	for p, it := range items {
		if it.dest < 0 {
			res.OutSource[p] = -1
			continue
		}
		if it.dest != p {
			return nil, fmt.Errorf("permnet: connection %d -> %d emerged at output %d", it.src, it.dest, p)
		}
		res.OutSource[p] = it.src
	}
	return res, nil
}

// Switches returns the permutation network's hardware: one quasisorting
// RBN per level, Σ_k (n/2) log2(n/2^k) switches — about half the full
// BRSMN's, since no scatter networks are needed.
func Switches(n int) int {
	total := 0
	// Level with blocks of this size uses (n/size) blocks of
	// (size/2)·log2(size) switches each.
	for size := n; size >= 2; size /= 2 {
		total += (n / size) * (size / 2) * shuffle.Log2(size)
	}
	return total
}
