package permnet

import (
	"math/rand"
	"testing"

	"brsmn/internal/rbn"
)

// checkPerm routes and verifies a (partial) permutation.
func checkPerm(t *testing.T, perm []int) {
	t.Helper()
	res, err := Route(perm, rbn.Sequential)
	if err != nil {
		t.Fatalf("Route(%v): %v", perm, err)
	}
	for i, d := range perm {
		if d < 0 {
			continue
		}
		if res.OutSource[d] != i {
			t.Fatalf("perm %v: output %d got %d, want %d", perm, d, res.OutSource[d], i)
		}
	}
}

// TestExhaustiveN4 routes every full permutation of 4 elements.
func TestExhaustiveN4(t *testing.T) {
	perm := []int{0, 1, 2, 3}
	var rec func(k int)
	rec = func(k int) {
		if k == 4 {
			checkPerm(t, perm)
			return
		}
		for i := k; i < 4; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
}

// TestExhaustiveN8Sampled routes many random permutations of 8 and all
// cyclic shifts.
func TestExhaustiveN8Sampled(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	n := 8
	for shift := 0; shift < n; shift++ {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = (i + shift) % n
		}
		checkPerm(t, perm)
	}
	for trial := 0; trial < 200; trial++ {
		checkPerm(t, rng.Perm(n))
	}
}

// TestPartialAndLarge routes partial permutations at larger sizes.
func TestPartialAndLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, n := range []int{2, 16, 128, 1024} {
		for trial := 0; trial < 8; trial++ {
			perm := rng.Perm(n)
			for i := range perm {
				if rng.Intn(3) == 0 {
					perm[i] = -1
				}
			}
			checkPerm(t, perm)
		}
	}
}

// TestLevelCount checks one composed plan per address bit.
func TestLevelCount(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	res, err := Route(rng.Perm(64), rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 6 {
		t.Errorf("levels = %d, want 6", len(res.Levels))
	}
}

// TestValidation checks error paths.
func TestValidation(t *testing.T) {
	if _, err := Route([]int{0, 1, 2}, rbn.Sequential); err == nil {
		t.Error("accepted non-power-of-two size")
	}
	if _, err := Route([]int{1, 1}, rbn.Sequential); err == nil {
		t.Error("accepted duplicate destination")
	}
	if _, err := Route([]int{0, 9}, rbn.Sequential); err == nil {
		t.Error("accepted out-of-range destination")
	}
}

// TestSwitchCountHalvesBRSMN checks the ablation arithmetic: the
// permutation network's switch count is exactly half the BRSMN BSN
// switch total (quasisort RBNs only, no scatter RBNs), plus nothing else.
func TestSwitchCountHalvesBRSMN(t *testing.T) {
	// Σ over levels of (n/size)·(size/2)·log2(size) for n = 16:
	// 8·4 + 2·8·... compute by hand: level sizes 16,8,4,2:
	// 1·8·4 + 2·4·3 + 4·2·2 + 8·1·1 = 32 + 24 + 16 + 8 = 80.
	if got := Switches(16); got != 80 {
		t.Errorf("Switches(16) = %d, want 80", got)
	}
}
