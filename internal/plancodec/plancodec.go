// Package plancodec serializes computed switch settings into a compact
// binary wire format, so external tooling (hardware test benches, FPGA
// configuration flows, remote clients of cmd/brsmnd) can consume the
// routing decisions rather than only the simulated deliveries.
//
// Format (all integers little-endian):
//
//	magic   [4]byte "BRSP"
//	version uint8 (1)
//	n       uint32
//	columns uint32
//	then per column:
//	  kind      uint8   (fabric.ColumnKind)
//	  level     uint8
//	  blockLog  uint8   (log2 of the pair-wiring block size)
//	  advance   uint8   (1 if a tag hand-off follows the column)
//	  settings  ceil(n/2 * 2 / 8) bytes, 2 bits per switch, LSB first
//
// Two bits encode a swbox.Setting exactly (the paper's r_i values 0–3).
package plancodec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"brsmn/internal/fabric"
	"brsmn/internal/shuffle"
	"brsmn/internal/swbox"
)

const (
	// Magic is the 4-byte header every serialized plan starts with.
	Magic = "BRSP"
	// FormatVersion is the version this package encodes. Decode accepts
	// exactly this version; anything newer fails with ErrUnknownVersion
	// so old daemons reject plans from future builds instead of
	// misparsing them.
	FormatVersion = 1
)

// ErrUnknownVersion reports a well-formed header whose version this
// build does not speak. Callers distinguishing "corrupt" from "newer
// format" (e.g. snapshot loaders deciding whether to replan or abort)
// match it with errors.Is.
var ErrUnknownVersion = errors.New("plancodec: unknown format version")

// SniffVersion reads the header without decoding the body: it returns
// the format version of a serialized plan, or an error when the blob
// is too short or does not carry the plan magic. A successful sniff
// does not promise Decode will succeed — only that the header is ours.
func SniffVersion(data []byte) (int, error) {
	if len(data) < 5 || string(data[:4]) != Magic {
		return 0, fmt.Errorf("plancodec: bad magic")
	}
	return int(data[4]), nil
}

// Encode serializes a flattened column program for an n-port network.
func Encode(n int, cols []fabric.Column) ([]byte, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("plancodec: size %d is not a power of two >= 2", n)
	}
	if len(cols) > 255*255 { // far beyond any real depth; keeps sizes sane
		return nil, fmt.Errorf("plancodec: %d columns is implausible", len(cols))
	}
	out := make([]byte, 0, 16+len(cols)*(4+n/8+1))
	out = append(out, Magic...)
	out = append(out, FormatVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(cols)))
	settingsBytes := (n/2*2 + 7) / 8
	for ci, c := range cols {
		if len(c.Settings) != n/2 {
			return nil, fmt.Errorf("plancodec: column %d has %d settings, want %d", ci, len(c.Settings), n/2)
		}
		if !shuffle.IsPow2(c.BlockSize) || c.BlockSize < 2 || c.BlockSize > n {
			return nil, fmt.Errorf("plancodec: column %d block size %d invalid", ci, c.BlockSize)
		}
		if c.Level < 0 || c.Level > 255 {
			return nil, fmt.Errorf("plancodec: column %d level %d out of byte range", ci, c.Level)
		}
		out = append(out, uint8(c.Kind), uint8(c.Level), uint8(shuffle.Log2(c.BlockSize)), boolByte(c.AdvanceAfter))
		packed := make([]byte, settingsBytes)
		for w, s := range c.Settings {
			if !s.Valid() {
				return nil, fmt.Errorf("plancodec: column %d switch %d has invalid setting %d", ci, w, uint8(s))
			}
			packed[w/4] |= uint8(s) << (uint(w%4) * 2)
		}
		out = append(out, packed...)
	}
	return out, nil
}

// Decode parses a serialized column program.
func Decode(data []byte) (int, []fabric.Column, error) {
	if len(data) < 13 || string(data[:4]) != Magic {
		return 0, nil, fmt.Errorf("plancodec: bad magic")
	}
	if data[4] != FormatVersion {
		return 0, nil, fmt.Errorf("%w %d (this build speaks %d)", ErrUnknownVersion, data[4], FormatVersion)
	}
	n := int(binary.LittleEndian.Uint32(data[5:9]))
	count := int(binary.LittleEndian.Uint32(data[9:13]))
	if !shuffle.IsPow2(n) || n < 2 {
		return 0, nil, fmt.Errorf("plancodec: size %d is not a power of two >= 2", n)
	}
	if count < 0 || count > 255*255 {
		return 0, nil, fmt.Errorf("plancodec: column count %d implausible", count)
	}
	settingsBytes := (n/2*2 + 7) / 8
	pos := 13
	cols := make([]fabric.Column, 0, count)
	for ci := 0; ci < count; ci++ {
		if pos+4+settingsBytes > len(data) {
			return 0, nil, fmt.Errorf("plancodec: truncated at column %d", ci)
		}
		c := fabric.Column{
			Kind:         fabric.ColumnKind(data[pos]),
			Level:        int(data[pos+1]),
			BlockSize:    1 << data[pos+2],
			AdvanceAfter: data[pos+3] == 1,
			Settings:     make([]swbox.Setting, n/2),
		}
		if c.BlockSize < 2 || c.BlockSize > n {
			return 0, nil, fmt.Errorf("plancodec: column %d block size %d invalid", ci, c.BlockSize)
		}
		pos += 4
		packed := data[pos : pos+settingsBytes]
		for w := range c.Settings {
			c.Settings[w] = swbox.Setting(packed[w/4] >> (uint(w%4) * 2) & 3)
		}
		pos += settingsBytes
		cols = append(cols, c)
	}
	if pos != len(data) {
		return 0, nil, fmt.Errorf("plancodec: %d trailing bytes", len(data)-pos)
	}
	return n, cols, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
