package plancodec

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/swbox"
	"brsmn/internal/workload"
)

// TestRoundTrip encodes and decodes flattened programs for routed
// assignments and checks exact reconstruction, then replays the decoded
// program and checks the deliveries.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	for _, n := range []int{4, 8, 64, 256} {
		a := workload.Random(rng, n, 0.8, 0.5)
		res, err := core.Route(a)
		if err != nil {
			t.Fatal(err)
		}
		cols, err := fabric.Flatten(res)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := Encode(n, cols)
		if err != nil {
			t.Fatal(err)
		}
		gotN, gotCols, err := Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != n || len(gotCols) != len(cols) {
			t.Fatalf("n=%d: decoded (%d, %d cols)", n, gotN, len(gotCols))
		}
		for ci := range cols {
			if !reflect.DeepEqual(cols[ci], gotCols[ci]) {
				t.Fatalf("n=%d: column %d differs:\n%+v\n%+v", n, ci, cols[ci], gotCols[ci])
			}
		}
		// The decoded program must still route correctly.
		cells, err := bsn.CellsForAssignment(a)
		if err != nil {
			t.Fatal(err)
		}
		out, err := fabric.Run(gotCols, cells)
		if err != nil {
			t.Fatal(err)
		}
		for p, c := range out {
			want := res.Deliveries[p].Source
			got := -1
			if !c.IsIdle() {
				got = c.Source
			}
			if got != want {
				t.Fatalf("n=%d: replayed output %d = %d, want %d", n, p, got, want)
			}
		}
	}
}

// TestDecodeRejectsCorruption covers the format guards.
func TestDecodeRejectsCorruption(t *testing.T) {
	res, err := core.Route(workload.Broadcast(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Encode(8, cols)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"bad magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":  func(b []byte) []byte { b[4] = 99; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-3] },
		"trailing":     func(b []byte) []byte { return append(b, 0) },
		"zero n":       func(b []byte) []byte { b[5], b[6], b[7], b[8] = 0, 0, 0, 0; return b },
		"bad blocklog": func(b []byte) []byte { b[15] = 31; return b },
	}
	for name, corrupt := range cases {
		cp := append([]byte(nil), blob...)
		if _, _, err := Decode(corrupt(cp)); err == nil {
			t.Errorf("%s: Decode accepted corruption", name)
		}
	}
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode accepted empty input")
	}
}

// TestVersionSurface covers the exported format identity: sniffing the
// header without a full decode, and the typed unknown-version error a
// snapshot loader distinguishes from plain corruption.
func TestVersionSurface(t *testing.T) {
	res, err := core.Route(workload.Broadcast(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Encode(8, cols)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := SniffVersion(blob); err != nil || v != FormatVersion {
		t.Fatalf("SniffVersion = %d, %v; want %d", v, err, FormatVersion)
	}

	// A future version sniffs fine but decodes to ErrUnknownVersion.
	future := append([]byte(nil), blob...)
	future[4] = FormatVersion + 1
	if v, err := SniffVersion(future); err != nil || v != FormatVersion+1 {
		t.Fatalf("SniffVersion(future) = %d, %v", v, err)
	}
	if _, _, err := Decode(future); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("Decode(future) = %v, want ErrUnknownVersion", err)
	}

	// Corruption is not an unknown version.
	garbled := append([]byte(nil), blob...)
	garbled[0] = 'X'
	if _, err := SniffVersion(garbled); err == nil {
		t.Error("SniffVersion accepted bad magic")
	}
	if _, _, err := Decode(garbled); errors.Is(err, ErrUnknownVersion) {
		t.Error("bad magic misreported as unknown version")
	}
	if _, err := SniffVersion(blob[:4]); err == nil {
		t.Error("SniffVersion accepted a headerless blob")
	}
}

// TestEncodeValidation covers the encoder guards.
func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(3, nil); err == nil {
		t.Error("Encode accepted bad size")
	}
	bad := []fabric.Column{{BlockSize: 2, Settings: nil}}
	if _, err := Encode(8, bad); err == nil {
		t.Error("Encode accepted short settings")
	}
	bad = []fabric.Column{{BlockSize: 3, Settings: make([]swbox.Setting, 4)}}
	if _, err := Encode(8, bad); err == nil {
		t.Error("Encode accepted non-power-of-two block size")
	}
	bad = []fabric.Column{{BlockSize: 2, Level: 300, Settings: make([]swbox.Setting, 4)}}
	if _, err := Encode(8, bad); err == nil {
		t.Error("Encode accepted out-of-range level")
	}
	bad = []fabric.Column{{BlockSize: 2, Settings: []swbox.Setting{9, 0, 0, 0}}}
	if _, err := Encode(8, bad); err == nil {
		t.Error("Encode accepted invalid setting")
	}
}
