// Package prefix implements the running-adder (parallel-prefix) network
// used by the copy-network baseline and, conceptually, by the forward
// phases of the BRSMN's distributed routing: a log-depth tree of adders
// computing all prefix sums of its inputs.
//
// Both the plain O(n)-work sequential scan and the Ladner–Fischer-style
// network evaluation are provided; the network form also reports its
// depth and adder count, which feed the cost model.
package prefix

import "fmt"

// Sums returns the inclusive prefix sums of xs using a sequential scan.
func Sums(xs []int) []int {
	out := make([]int, len(xs))
	run := 0
	for i, x := range xs {
		run += x
		out[i] = run
	}
	return out
}

// Exclusive returns the exclusive prefix sums of xs (out[i] is the sum of
// xs[0..i)).
func Exclusive(xs []int) []int {
	out := make([]int, len(xs))
	run := 0
	for i, x := range xs {
		out[i] = run
		run += x
	}
	return out
}

// Network is a running-adder network over n inputs (n a power of two): a
// Ladner–Fischer prefix circuit with log2(n) levels of two-input adders.
type Network struct {
	n      int
	levels int
	adders int
}

// NewNetwork returns a running-adder network for n inputs.
func NewNetwork(n int) (*Network, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("prefix: size %d is not a power of two >= 1", n)
	}
	levels := 0
	adders := 0
	for d := 1; d < n; d *= 2 {
		levels++
		adders += n - d
	}
	return &Network{n: n, levels: levels, adders: adders}, nil
}

// N returns the network width.
func (nw *Network) N() int { return nw.n }

// Depth returns the number of adder levels, log2(n).
func (nw *Network) Depth() int { return nw.levels }

// Adders returns the number of two-input adders, n log2(n) - n + 1 in the
// Ladner–Fischer form used here.
func (nw *Network) Adders() int { return nw.adders }

// Run evaluates the network: level d adds the value d positions to the
// left into each position, which after log2(n) levels yields inclusive
// prefix sums. The evaluation mirrors the hardware level structure so the
// depth reported by Depth matches the longest path actually exercised.
func (nw *Network) Run(xs []int) ([]int, error) {
	if len(xs) != nw.n {
		return nil, fmt.Errorf("prefix: %d inputs for a %d-wide network", len(xs), nw.n)
	}
	cur := append([]int(nil), xs...)
	next := make([]int, nw.n)
	for d := 1; d < nw.n; d *= 2 {
		for i := 0; i < nw.n; i++ {
			if i >= d {
				next[i] = cur[i] + cur[i-d]
			} else {
				next[i] = cur[i]
			}
		}
		cur, next = next, cur
	}
	return cur, nil
}
