package prefix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSumsAgainstScan property-tests the network against the sequential
// scan.
func TestSumsAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 64, 1024} {
		nw, err := NewNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = rng.Intn(100) - 50
			}
			got, err := nw.Run(xs)
			if err != nil {
				t.Fatal(err)
			}
			want := Sums(xs)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d: position %d: %d, want %d", n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestExclusive checks the exclusive scan.
func TestExclusive(t *testing.T) {
	got := Exclusive([]int{3, 1, 4, 1})
	want := []int{0, 3, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Exclusive = %v, want %v", got, want)
		}
	}
}

// TestQuickInclusiveExclusive checks sums relate: inclusive[i] =
// exclusive[i] + xs[i].
func TestQuickInclusiveExclusive(t *testing.T) {
	f := func(raw []int8) bool {
		xs := make([]int, len(raw))
		for i, v := range raw {
			xs[i] = int(v)
		}
		inc := Sums(xs)
		exc := Exclusive(xs)
		for i := range xs {
			if inc[i] != exc[i]+xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestNetworkShape checks depth and adder counts.
func TestNetworkShape(t *testing.T) {
	nw, _ := NewNetwork(8)
	if nw.Depth() != 3 {
		t.Errorf("Depth(8) = %d, want 3", nw.Depth())
	}
	// Ladner–Fischer form used here: sum over d of (n - d) for d = 1,2,4
	// = 7 + 6 + 4 = 17.
	if nw.Adders() != 17 {
		t.Errorf("Adders(8) = %d, want 17", nw.Adders())
	}
	if nw.N() != 8 {
		t.Error("N wrong")
	}
	if _, err := NewNetwork(3); err == nil {
		t.Error("NewNetwork(3) succeeded")
	}
	if _, err := nw.Run(make([]int, 4)); err == nil {
		t.Error("Run accepted wrong width")
	}
}
