package rbn

import (
	"fmt"

	"brsmn/internal/shuffle"
	"brsmn/internal/swbox"
)

// BitSortPlan computes switch settings for an n x n RBN so that the γ
// inputs (gamma[i] == true) appear at the outputs as the circular compact
// sequence C^n_{s,l;β,γ} — all γs contiguous modulo n starting at output
// position s — for any requested s (Theorem 1). It is the distributed
// self-routing algorithm of Table 3: a forward sweep sums the γ counts up
// the binary tree embedded in the RBN, and a backward sweep distributes
// starting positions and sets every merging stage per Lemma 1.
//
// With γ = "destination bit is 1" and s = n/2, the plan sorts a full
// permutation's current address bit into ascending order,
// 0^(n/2) 1^(n/2) — the bit-sorting network of Section 4.
func BitSortPlan(n int, gamma []bool, s int) (*Plan, error) {
	return Sequential.BitSortPlan(n, gamma, s)
}

// BitSortPlan is the engine-parameterized form of the package-level
// function.
func (e Engine) BitSortPlan(n int, gamma []bool, s int) (*Plan, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("rbn: network size %d is not a power of two >= 2", n)
	}
	if len(gamma) != n {
		return nil, fmt.Errorf("rbn: %d input marks for an %d x %d network", len(gamma), n, n)
	}
	if s < 0 || s >= n {
		return nil, fmt.Errorf("rbn: starting position %d out of range [0,%d)", s, n)
	}
	p := NewPlan(n)
	m := p.M

	// Forward phase: ls[j][b] is l, the γ count of the level-j node
	// covering links [b*2^j, (b+1)*2^j).
	ls := make([][]int, m+1)
	ls[0] = make([]int, n)
	e.parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if gamma[i] {
				ls[0][i] = 1
			}
		}
	})
	for j := 1; j <= m; j++ {
		ls[j] = make([]int, n>>j)
		prev := ls[j-1]
		cur := ls[j]
		e.parallelFor(len(cur), func(lo, hi int) {
			for b := lo; b < hi; b++ {
				cur[b] = prev[2*b] + prev[2*b+1]
			}
		})
	}

	// Backward phase: ss[j][b] is the starting position handed to the
	// level-j node; the root receives the caller's s. Each node applies
	// Lemma 1 and configures its merging stage (column j-1).
	ss := make([][]int, m+1)
	for j := range ss {
		ss[j] = make([]int, n>>j)
	}
	ss[m][0] = s
	for j := m; j >= 1; j-- {
		h := 1 << (j - 1) // half the node size; switches per node
		cur := ss[j]
		child := ss[j-1]
		lchild := ls[j-1]
		col := p.Stages[j-1]
		e.parallelFor(len(cur), func(lo, hi int) {
			for b := lo; b < hi; b++ {
				sNode := cur[b]
				l0 := lchild[2*b]
				s1 := (sNode + l0) % h
				bset := swbox.Setting(((sNode + l0) / h) % 2)
				child[2*b] = sNode % h
				child[2*b+1] = s1
				// W^h_{0,s1;b̄,b}: the first s1 switches get bset.
				base := b * h
				for i := 0; i < h; i++ {
					if i < s1 {
						col[base+i] = bset
					} else {
						col[base+i] = bset.Opposite()
					}
				}
			}
		})
	}
	return p, nil
}

// BitSortRoute composes BitSortPlan with Apply: it routes the boolean
// vector itself and returns the plan and the output vector, primarily for
// verification.
func BitSortRoute(n int, gamma []bool, s int) (*Plan, []bool, error) {
	p, err := BitSortPlan(n, gamma, s)
	if err != nil {
		return nil, nil, err
	}
	out, err := Apply(p, gamma, nil)
	if err != nil {
		return nil, nil, err
	}
	return p, out, nil
}
