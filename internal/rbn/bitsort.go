package rbn

import (
	"fmt"

	"brsmn/internal/shuffle"
	"brsmn/internal/swbox"
)

// BitSortPlan computes switch settings for an n x n RBN so that the γ
// inputs (gamma[i] == true) appear at the outputs as the circular compact
// sequence C^n_{s,l;β,γ} — all γs contiguous modulo n starting at output
// position s — for any requested s (Theorem 1). It is the distributed
// self-routing algorithm of Table 3: a forward sweep sums the γ counts up
// the binary tree embedded in the RBN, and a backward sweep distributes
// starting positions and sets every merging stage per Lemma 1.
//
// With γ = "destination bit is 1" and s = n/2, the plan sorts a full
// permutation's current address bit into ascending order,
// 0^(n/2) 1^(n/2) — the bit-sorting network of Section 4.
func BitSortPlan(n int, gamma []bool, s int) (*Plan, error) {
	return Sequential.BitSortPlan(n, gamma, s)
}

// BitSortPlan is the engine-parameterized form of the package-level
// function.
func (e Engine) BitSortPlan(n int, gamma []bool, s int) (*Plan, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("rbn: network size %d is not a power of two >= 2", n)
	}
	p := NewPlan(n)
	if err := e.BitSortPlanInto(p, gamma, s, nil); err != nil {
		return nil, err
	}
	return p, nil
}

// BitSortPlanInto computes the bit-sorting plan into p (fully
// overwriting its settings), drawing the forward/backward sweep arrays
// from sc; a nil sc allocates transient scratch.
func (e Engine) BitSortPlanInto(p *Plan, gamma []bool, s int, sc *Scratch) error {
	n := p.N
	if len(gamma) != n {
		return fmt.Errorf("rbn: %d input marks for an %d x %d network", len(gamma), n, n)
	}
	if s < 0 || s >= n {
		return fmt.Errorf("rbn: starting position %d out of range [0,%d)", s, n)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.ensure(n)
	if e.usePacked(n) {
		packGammaBits(sc.pg[:n>>6], gamma)
		return packedBitSort(p, sc.pg[:n>>6], s, sc)
	}
	m := p.M

	// Forward phase: ls[j][b] is l, the γ count of the level-j node
	// covering links [b*2^j, (b+1)*2^j). Sweep bodies are capture-free
	// parFor literals, so a sequential engine allocates nothing.
	ls := sc.ls
	parFor(e, n, bitSortLeafArgs{ls[0], gamma},
		func(a bitSortLeafArgs, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := 0
				if a.gamma[i] {
					v = 1
				}
				a.dst[i] = v
			}
		})
	for j := 1; j <= m; j++ {
		parFor(e, n>>j, intSumArgs{ls[j-1], ls[j][:n>>j]},
			func(a intSumArgs, lo, hi int) {
				for b := lo; b < hi; b++ {
					a.cur[b] = a.prev[2*b] + a.prev[2*b+1]
				}
			})
	}

	// Backward phase: ss[j][b] is the starting position handed to the
	// level-j node; the root receives the caller's s. Each node applies
	// Lemma 1 and configures its merging stage (column j-1).
	ss := sc.ss
	ss[m][0] = s
	for j := m; j >= 1; j-- {
		h := 1 << (j - 1) // half the node size; switches per node
		args := bitSortBwdArgs{
			cur: ss[j][:n>>j], child: ss[j-1], lchild: ls[j-1],
			col: p.Stages[j-1], h: h,
		}
		parFor(e, n>>j, args, func(a bitSortBwdArgs, lo, hi int) {
			h := a.h
			for b := lo; b < hi; b++ {
				sNode := a.cur[b]
				l0 := a.lchild[2*b]
				s1 := (sNode + l0) % h
				bset := swbox.Setting(((sNode + l0) / h) % 2)
				a.child[2*b] = sNode % h
				a.child[2*b+1] = s1
				// W^h_{0,s1;b̄,b}: the first s1 switches get bset.
				base := b * h
				for i := 0; i < h; i++ {
					if i < s1 {
						a.col[base+i] = bset
					} else {
						a.col[base+i] = bset.Opposite()
					}
				}
			}
		})
	}
	return nil
}

// Args structs for the capture-free parFor sweep bodies of
// BitSortPlanInto.
type bitSortLeafArgs struct {
	dst   []int
	gamma []bool
}

type intSumArgs struct{ prev, cur []int }

type bitSortBwdArgs struct {
	cur, child, lchild []int
	col                []swbox.Setting
	h                  int
}

// BitSortRoute composes BitSortPlan with Apply: it routes the boolean
// vector itself and returns the plan and the output vector, primarily for
// verification.
func BitSortRoute(n int, gamma []bool, s int) (*Plan, []bool, error) {
	p, err := BitSortPlan(n, gamma, s)
	if err != nil {
		return nil, nil, err
	}
	out, err := Apply(p, gamma, nil)
	if err != nil {
		return nil, nil, err
	}
	return p, out, nil
}
