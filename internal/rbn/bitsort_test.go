package rbn

import (
	"math/rand"
	"testing"

	"brsmn/internal/seq"
)

// checkBitSort verifies that BitSortPlan routes the given γ marks to the
// circular compact sequence C_{s,l} and that the plan is broadcast-free.
func checkBitSort(t *testing.T, n int, gamma []bool, s int) {
	t.Helper()
	p, out, err := BitSortRoute(n, gamma, s)
	if err != nil {
		t.Fatalf("BitSortRoute(n=%d, s=%d): %v", n, s, err)
	}
	counts := p.CountSettings()
	if counts[2] != 0 || counts[3] != 0 {
		t.Fatalf("bit-sort plan for n=%d contains broadcast settings: %v", n, counts)
	}
	l := 0
	for _, g := range gamma {
		if g {
			l++
		}
	}
	if !seq.IsCompact(out, s, l, false, true) {
		t.Fatalf("n=%d s=%d gamma=%v: output %v is not C_{%d,%d}", n, s, gamma, out, s, l)
	}
}

// TestBitSortExhaustiveSmall checks Theorem 1 exhaustively: every 0/1
// input pattern and every starting position for n = 2, 4, 8.
func TestBitSortExhaustiveSmall(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		for mask := 0; mask < 1<<n; mask++ {
			gamma := make([]bool, n)
			for i := range gamma {
				gamma[i] = mask>>i&1 == 1
			}
			for s := 0; s < n; s++ {
				checkBitSort(t, n, gamma, s)
			}
		}
	}
}

// TestBitSortRandomLarge checks Theorem 1 on random patterns for larger
// power-of-two sizes.
func TestBitSortRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{16, 32, 64, 128, 256, 1024} {
		for trial := 0; trial < 20; trial++ {
			gamma := make([]bool, n)
			for i := range gamma {
				gamma[i] = rng.Intn(2) == 1
			}
			checkBitSort(t, n, gamma, rng.Intn(n))
		}
	}
}

// TestBitSortFullSort checks the bit-sorting special case of Section 4:
// with l = n/2 ones and s = n/2, the output is 0^(n/2) 1^(n/2).
func TestBitSortFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		gamma := make([]bool, n)
		for i := range gamma {
			gamma[i] = i < n/2
		}
		rng.Shuffle(n, func(i, j int) { gamma[i], gamma[j] = gamma[j], gamma[i] })
		_, out, err := BitSortRoute(n, gamma, n/2)
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range out {
			if want := i >= n/2; g != want {
				t.Fatalf("n=%d: output %d is %v, want %v (full ascending sort)", n, i, g, want)
			}
		}
	}
}

// TestBitSortOneToOne verifies the routing is a permutation (no value is
// duplicated or lost) by routing distinct payloads.
func TestBitSortOneToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{8, 64, 512} {
		gamma := make([]bool, n)
		for i := range gamma {
			gamma[i] = rng.Intn(2) == 1
		}
		p, err := BitSortPlan(n, gamma, rng.Intn(n))
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		out, err := Apply(p, ids, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		for _, id := range out {
			if seen[id] {
				t.Fatalf("n=%d: payload %d appears twice at the outputs", n, id)
			}
			seen[id] = true
		}
	}
}

// TestBitSortParallelEngineAgrees checks the parallel engine produces
// bit-identical plans to the sequential one.
func TestBitSortParallelEngineAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	par := Engine{Workers: 8}
	for _, n := range []int{2, 16, 1024, 4096} {
		gamma := make([]bool, n)
		for i := range gamma {
			gamma[i] = rng.Intn(2) == 1
		}
		s := rng.Intn(n)
		p1, err := BitSortPlan(n, gamma, s)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := par.BitSortPlan(n, gamma, s)
		if err != nil {
			t.Fatal(err)
		}
		for j := range p1.Stages {
			for w := range p1.Stages[j] {
				if p1.Stages[j][w] != p2.Stages[j][w] {
					t.Fatalf("n=%d: engines disagree at stage %d switch %d", n, j, w)
				}
			}
		}
	}
}

// TestBitSortErrors checks argument validation.
func TestBitSortErrors(t *testing.T) {
	if _, err := BitSortPlan(3, make([]bool, 3), 0); err == nil {
		t.Error("BitSortPlan accepted non-power-of-two size")
	}
	if _, err := BitSortPlan(4, make([]bool, 3), 0); err == nil {
		t.Error("BitSortPlan accepted mismatched input length")
	}
	if _, err := BitSortPlan(4, make([]bool, 4), 4); err == nil {
		t.Error("BitSortPlan accepted out-of-range starting position")
	}
	if _, err := BitSortPlan(4, make([]bool, 4), -1); err == nil {
		t.Error("BitSortPlan accepted negative starting position")
	}
}
