package rbn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Occupancy counts the sweep-worker goroutines currently executing a
// parallel chunk, plus the all-time peak — the "how busy is the engine"
// gauge the daemon's metrics surface scrapes. A nil *Occupancy is valid
// and records nothing, so the tracking costs two atomic adds per spawn
// batch only when someone is watching. Safe for concurrent use.
type Occupancy struct {
	busy atomic.Int64
	peak atomic.Int64
}

// Busy returns the number of worker goroutines currently in a sweep.
func (o *Occupancy) Busy() int64 {
	if o == nil {
		return 0
	}
	return o.busy.Load()
}

// Peak returns the largest concurrent worker count observed.
func (o *Occupancy) Peak() int64 {
	if o == nil {
		return 0
	}
	return o.peak.Load()
}

// add moves the busy count by n, raising the peak on the way up.
func (o *Occupancy) add(n int64) {
	if o == nil {
		return
	}
	b := o.busy.Add(n)
	for {
		p := o.peak.Load()
		if b <= p || o.peak.CompareAndSwap(p, b) {
			return
		}
	}
}

// Engine selects how the distributed setting algorithms are executed.
// Workers <= 1 runs the forward/backward sweeps sequentially; Workers > 1
// processes the independent nodes of each tree level concurrently, which
// mirrors the hardware, where every node of a level computes in parallel.
// Both modes produce bit-identical plans. Occ, when non-nil, tracks
// worker occupancy across every sweep the engine runs.
//
// Scalar forces the one-tag-per-iteration reference sweeps. The zero
// value (false) lets sufficiently large sweeps run the word-parallel
// packed kernels of kernels.go, which produce byte-identical plans; the
// scalar path is retained as the differential oracle and for exotic
// debugging.
type Engine struct {
	Workers int
	Occ     *Occupancy
	Scalar  bool
}

// Sequential is the default engine.
var Sequential = Engine{Workers: 1}

// ParallelEngine returns an engine using one worker per available CPU.
func ParallelEngine() Engine {
	return Engine{Workers: runtime.GOMAXPROCS(0)}
}

// minGrain is the smallest per-worker chunk worth spawning a goroutine
// for; below it the scheduling overhead dominates the O(1) per-node work.
// The threshold is deliberately high: a 4096-node sweep level is ~4 µs of
// scalar work, about the point where a goroutine spawn + wait pair stops
// costing more than it saves. (At the old 256 threshold a 4-worker engine
// spent more time parking/unparking workers per tree level than sweeping,
// which made the planner-parallel bench regime slower than one worker;
// coarse-grained parallelism across BSN subtrees is the planner's job.)
const minGrain = 4096

// parFor runs fn(args, lo, hi) over [0, n) split into contiguous chunks
// across the engine's workers; with one worker (or a small n) it
// degenerates to a single direct call. fn must be capture-free — all
// state flows through args — so the func value is static and the
// sequential fast path performs no allocation (a closure passed to the
// goroutine-spawning slow path would otherwise escape to the heap at
// every call site, dominating the allocation profile of a warm planning
// loop).
func parFor[A any](e Engine, n int, args A, fn func(a A, lo, hi int)) {
	w := e.Workers
	if w <= 1 || n <= minGrain {
		fn(args, 0, n)
		return
	}
	chunks := (n + minGrain - 1) / minGrain
	if chunks < w {
		w = chunks
	}
	e.Occ.add(int64(w))
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(lo, hi int) {
			defer wg.Done()
			fn(args, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	e.Occ.add(int64(-w))
}

// parallelFor runs fn over [0, n) split into contiguous chunks across the
// engine's workers. With one worker (or a small n) it degenerates to a
// plain loop.
func (e Engine) parallelFor(n int, fn func(lo, hi int)) {
	w := e.Workers
	if w <= 1 || n <= minGrain {
		fn(0, n)
		return
	}
	chunks := (n + minGrain - 1) / minGrain
	if chunks < w {
		w = chunks
	}
	e.Occ.add(int64(w))
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	e.Occ.add(int64(-w))
}
