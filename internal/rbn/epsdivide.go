package rbn

import (
	"fmt"

	"brsmn/internal/shuffle"
	"brsmn/internal/tag"
)

// EpsDivide implements the distributed ε-dividing algorithm of Table 6
// (Section 6.2). Its input is the tag vector reaching the quasisorting
// network — values in {0, 1, ε} with at most n/2 zeros and at most n/2
// ones — and its output relabels every ε as a dummy 0 (ε0) or dummy 1
// (ε1) so that exactly n/2 links carry a (real or dummy) 0 and n/2 carry
// a (real or dummy) 1. A plain bit-sorting pass on the resulting sort bits
// then realizes the quasisorting function.
func EpsDivide(tags []tag.Value) ([]tag.Value, error) {
	return Sequential.EpsDivide(tags)
}

// EpsDivide is the engine-parameterized form of the package-level
// function.
func (e Engine) EpsDivide(tags []tag.Value) ([]tag.Value, error) {
	n := len(tags)
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("rbn: input size %d is not a power of two >= 2", n)
	}
	m := shuffle.Log2(n)

	// Forward phase: per-node ε count; n1 (the real-1 count) is also a
	// forward reduction (Section 7.2 counts it from bit b2).
	ne := make([][]int, m+1)
	n1s := make([][]int, m+1)
	ne[0] = make([]int, n)
	n1s[0] = make([]int, n)
	var leafErr error
	e.parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			switch v := tags[i]; {
			case v == tag.Eps:
				ne[0][i] = 1
			case v == tag.V1:
				n1s[0][i] = 1
			case v == tag.V0:
			default:
				leafErr = fmt.Errorf("rbn: ε-divide input %d carries %v; want 0, 1 or ε", i, v)
			}
		}
	})
	if leafErr != nil {
		return nil, leafErr
	}
	for j := 1; j <= m; j++ {
		ne[j] = make([]int, n>>j)
		n1s[j] = make([]int, n>>j)
		e.parallelFor(n>>j, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				ne[j][b] = ne[j-1][2*b] + ne[j-1][2*b+1]
				n1s[j][b] = n1s[j-1][2*b] + n1s[j-1][2*b+1]
			}
		})
	}

	n1 := n1s[m][0]
	n0 := n - n1 - ne[m][0]
	if n1 > n/2 {
		return nil, fmt.Errorf("rbn: ε-divide input has %d ones, more than n/2 = %d", n1, n/2)
	}
	if n0 > n/2 {
		return nil, fmt.Errorf("rbn: ε-divide input has %d zeros, more than n/2 = %d", n0, n/2)
	}

	// Backward phase: split each node's ε budget between dummy 0s and
	// dummy 1s, filling dummy 0s greedily into the left child — any split
	// respecting the per-node ε counts works, and this one needs only a
	// min and three subtractions per node (Table 6).
	ne0 := make([][]int, m+1)
	ne1 := make([][]int, m+1)
	for j := range ne0 {
		ne0[j] = make([]int, n>>j)
		ne1[j] = make([]int, n>>j)
	}
	ne1[m][0] = n/2 - n1
	ne0[m][0] = ne[m][0] - ne1[m][0]
	for j := m; j >= 1; j-- {
		e.parallelFor(n>>j, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				e0 := ne0[j][b]
				le := ne[j-1][2*b]   // εs in the left child
				re := ne[j-1][2*b+1] // εs in the right child
				l0 := min(e0, le)
				ne0[j-1][2*b] = l0
				ne1[j-1][2*b] = le - l0
				ne0[j-1][2*b+1] = e0 - l0
				ne1[j-1][2*b+1] = re - (e0 - l0)
			}
		})
	}

	out := append([]tag.Value(nil), tags...)
	e.parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if tags[i] != tag.Eps {
				continue
			}
			switch {
			case ne0[0][i] == 1:
				out[i] = tag.Eps0
			case ne1[0][i] == 1:
				out[i] = tag.Eps1
			}
		}
	})
	return out, nil
}

// QuasisortPlan computes the switch settings of an n x n RBN acting as
// the quasisorting network of a binary splitting network (Section 5.2):
// after ε-dividing, the (real and dummy) sort bits are bit-sorted with
// starting position n/2, which routes every real 0 to the upper half of
// the outputs and every real 1 to the lower half, εs filling the gaps.
// It returns the plan together with the ε-divided tag vector whose sort
// bits the plan was computed for.
func QuasisortPlan(n int, tags []tag.Value) (*Plan, []tag.Value, error) {
	return Sequential.QuasisortPlan(n, tags)
}

// QuasisortPlan is the engine-parameterized form of the package-level
// function.
func (e Engine) QuasisortPlan(n int, tags []tag.Value) (*Plan, []tag.Value, error) {
	if len(tags) != n {
		return nil, nil, fmt.Errorf("rbn: %d input tags for an %d x %d network", len(tags), n, n)
	}
	divided, err := e.EpsDivide(tags)
	if err != nil {
		return nil, nil, err
	}
	gamma := make([]bool, n)
	for i, v := range divided {
		gamma[i] = v.SortBit() == 1
	}
	// C_{n/2, n/2; 0, 1} = 0^(n/2) 1^(n/2): ascending bit sort.
	p, err := e.BitSortPlan(n, gamma, n/2)
	if err != nil {
		return nil, nil, err
	}
	return p, divided, nil
}

// QuasisortRoute composes QuasisortPlan with tag routing and returns the
// plan, the ε-divided input tags, and the output tags (with dummies
// reverted to plain ε).
func QuasisortRoute(n int, tags []tag.Value) (*Plan, []tag.Value, []tag.Value, error) {
	p, divided, err := QuasisortPlan(n, tags)
	if err != nil {
		return nil, nil, nil, err
	}
	out, err := ApplyTags(p, divided)
	if err != nil {
		return nil, nil, nil, err
	}
	for i, v := range out {
		out[i] = v.Real()
	}
	return p, divided, out, nil
}
