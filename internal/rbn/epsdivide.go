package rbn

import (
	"fmt"

	"brsmn/internal/shuffle"
	"brsmn/internal/tag"
)

// EpsDivide implements the distributed ε-dividing algorithm of Table 6
// (Section 6.2). Its input is the tag vector reaching the quasisorting
// network — values in {0, 1, ε} with at most n/2 zeros and at most n/2
// ones — and its output relabels every ε as a dummy 0 (ε0) or dummy 1
// (ε1) so that exactly n/2 links carry a (real or dummy) 0 and n/2 carry
// a (real or dummy) 1. A plain bit-sorting pass on the resulting sort bits
// then realizes the quasisorting function.
func EpsDivide(tags []tag.Value) ([]tag.Value, error) {
	return Sequential.EpsDivide(tags)
}

// EpsDivide is the engine-parameterized form of the package-level
// function.
func (e Engine) EpsDivide(tags []tag.Value) ([]tag.Value, error) {
	n := len(tags)
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("rbn: input size %d is not a power of two >= 2", n)
	}
	out := make([]tag.Value, n)
	if err := e.EpsDivideInto(out, tags, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// EpsDivideInto is EpsDivide writing the relabelled vector into dst
// (len(dst) == len(tags), dst may alias tags), drawing the sweep arrays
// from sc; a nil sc allocates transient scratch.
func (e Engine) EpsDivideInto(dst []tag.Value, tags []tag.Value, sc *Scratch) error {
	n := len(tags)
	if !shuffle.IsPow2(n) || n < 2 {
		return fmt.Errorf("rbn: input size %d is not a power of two >= 2", n)
	}
	if len(dst) != n {
		return fmt.Errorf("rbn: ε-divide destination length %d for %d inputs", len(dst), n)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.ensure(n)
	if e.usePacked(n) {
		return packedEpsDivide(dst, tags, sc, nil)
	}
	m := shuffle.Log2(n)

	// Forward phase: per-node ε count; n1 (the real-1 count) is also a
	// forward reduction (Section 7.2 counts it from bit b2). The leaf
	// level writes every entry (scratch rows carry stale prior sweeps).
	// Sweep bodies are capture-free parFor literals, so a sequential
	// engine allocates nothing.
	ne := sc.ne
	n1s := sc.n1s
	sc.err = nil
	parFor(e, n, epsLeafArgs{ne[0], n1s[0], tags, sc},
		func(a epsLeafArgs, lo, hi int) {
			for i := lo; i < hi; i++ {
				eps, one := 0, 0
				switch v := a.tags[i]; {
				case v == tag.Eps:
					eps = 1
				case v == tag.V1:
					one = 1
				case v == tag.V0:
				default:
					a.sc.err = fmt.Errorf("rbn: ε-divide input %d carries %v; want 0, 1 or ε", i, v)
				}
				a.ne[i] = eps
				a.n1s[i] = one
			}
		})
	if sc.err != nil {
		return sc.err
	}
	for j := 1; j <= m; j++ {
		parFor(e, n>>j, intSumArgs{ne[j-1], ne[j][:n>>j]},
			func(a intSumArgs, lo, hi int) {
				for b := lo; b < hi; b++ {
					a.cur[b] = a.prev[2*b] + a.prev[2*b+1]
				}
			})
		parFor(e, n>>j, intSumArgs{n1s[j-1], n1s[j][:n>>j]},
			func(a intSumArgs, lo, hi int) {
				for b := lo; b < hi; b++ {
					a.cur[b] = a.prev[2*b] + a.prev[2*b+1]
				}
			})
	}

	n1 := n1s[m][0]
	n0 := n - n1 - ne[m][0]
	if n1 > n/2 {
		return fmt.Errorf("rbn: ε-divide input has %d ones, more than n/2 = %d", n1, n/2)
	}
	if n0 > n/2 {
		return fmt.Errorf("rbn: ε-divide input has %d zeros, more than n/2 = %d", n0, n/2)
	}

	// Backward phase: split each node's ε budget between dummy 0s and
	// dummy 1s, filling dummy 0s greedily into the left child — any split
	// respecting the per-node ε counts works, and this one needs only a
	// min and three subtractions per node (Table 6). Every level is fully
	// written top-down, so no pre-zeroing is needed.
	ne0 := sc.ne0
	ne1 := sc.ne1
	ne1[m][0] = n/2 - n1
	ne0[m][0] = ne[m][0] - ne1[m][0]
	for j := m; j >= 1; j-- {
		args := epsBwdArgs{
			ne0: ne0[j][:n>>j], ne0c: ne0[j-1],
			ne1c: ne1[j-1], nec: ne[j-1],
		}
		parFor(e, n>>j, args, func(a epsBwdArgs, lo, hi int) {
			for b := lo; b < hi; b++ {
				e0 := a.ne0[b]
				le := a.nec[2*b]   // εs in the left child
				re := a.nec[2*b+1] // εs in the right child
				l0 := min(e0, le)
				a.ne0c[2*b] = l0
				a.ne1c[2*b] = le - l0
				a.ne0c[2*b+1] = e0 - l0
				a.ne1c[2*b+1] = re - (e0 - l0)
			}
		})
	}

	parFor(e, n, epsRelabelArgs{dst, tags, ne0[0], ne1[0]},
		func(a epsRelabelArgs, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := a.tags[i]
				if v == tag.Eps {
					switch {
					case a.ne0[i] == 1:
						v = tag.Eps0
					case a.ne1[i] == 1:
						v = tag.Eps1
					}
				}
				a.dst[i] = v
			}
		})
	return nil
}

// Args structs for the capture-free parFor sweep bodies of
// EpsDivideInto.
type epsLeafArgs struct {
	ne, n1s []int
	tags    []tag.Value
	sc      *Scratch
}

type epsBwdArgs struct {
	ne0             []int // this level's dummy-0 budgets
	ne0c, ne1c, nec []int // children's budgets and ε counts
}

type epsRelabelArgs struct {
	dst, tags []tag.Value
	ne0, ne1  []int
}

// QuasisortPlan computes the switch settings of an n x n RBN acting as
// the quasisorting network of a binary splitting network (Section 5.2):
// after ε-dividing, the (real and dummy) sort bits are bit-sorted with
// starting position n/2, which routes every real 0 to the upper half of
// the outputs and every real 1 to the lower half, εs filling the gaps.
// It returns the plan together with the ε-divided tag vector whose sort
// bits the plan was computed for.
func QuasisortPlan(n int, tags []tag.Value) (*Plan, []tag.Value, error) {
	return Sequential.QuasisortPlan(n, tags)
}

// QuasisortPlan is the engine-parameterized form of the package-level
// function.
func (e Engine) QuasisortPlan(n int, tags []tag.Value) (*Plan, []tag.Value, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, nil, fmt.Errorf("rbn: network size %d is not a power of two >= 2", n)
	}
	p := NewPlan(n)
	divided := make([]tag.Value, n)
	if err := e.QuasisortPlanInto(p, divided, tags, nil); err != nil {
		return nil, nil, err
	}
	return p, divided, nil
}

// QuasisortPlanInto computes the quasisort plan into p (fully
// overwriting its settings) and the ε-divided tag vector into divided
// (length p.N), drawing every sweep array from sc; a nil sc allocates
// transient scratch.
func (e Engine) QuasisortPlanInto(p *Plan, divided []tag.Value, tags []tag.Value, sc *Scratch) error {
	n := p.N
	if len(tags) != n {
		return fmt.Errorf("rbn: %d input tags for an %d x %d network", len(tags), n, n)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.ensure(n)
	if e.usePacked(n) {
		// Fused packed path: the relabel pass emits the sort-bit bitmap
		// directly, skipping the byte-level γ extraction entirely.
		g := sc.pg[:n>>6]
		if err := packedEpsDivide(divided, tags, sc, g); err != nil {
			return err
		}
		// C_{n/2, n/2; 0, 1} = 0^(n/2) 1^(n/2): ascending bit sort.
		return packedBitSort(p, g, n/2, sc)
	}
	if err := e.EpsDivideInto(divided, tags, sc); err != nil {
		return err
	}
	gamma := sc.gamma[:n]
	for i, v := range divided {
		gamma[i] = v.SortBit() == 1
	}
	// C_{n/2, n/2; 0, 1} = 0^(n/2) 1^(n/2): ascending bit sort.
	return e.BitSortPlanInto(p, gamma, n/2, sc)
}

// QuasisortRoute composes QuasisortPlan with tag routing and returns the
// plan, the ε-divided input tags, and the output tags (with dummies
// reverted to plain ε).
func QuasisortRoute(n int, tags []tag.Value) (*Plan, []tag.Value, []tag.Value, error) {
	p, divided, err := QuasisortPlan(n, tags)
	if err != nil {
		return nil, nil, nil, err
	}
	out, err := ApplyTags(p, divided)
	if err != nil {
		return nil, nil, nil, err
	}
	for i, v := range out {
		out[i] = v.Real()
	}
	return p, divided, out, nil
}
