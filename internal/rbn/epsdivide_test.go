package rbn

import (
	"math/rand"
	"testing"

	"brsmn/internal/tag"
)

// randomQuasiTags builds a {0,1,ε} vector with at most n/2 zeros and at
// most n/2 ones — the post-scatter inputs a quasisorting network sees.
func randomQuasiTags(rng *rand.Rand, n int) []tag.Value {
	tags := make([]tag.Value, n)
	for i := range tags {
		tags[i] = tag.Eps
	}
	n0 := rng.Intn(n/2 + 1)
	n1 := rng.Intn(n/2 + 1)
	perm := rng.Perm(n)
	for i := 0; i < n0; i++ {
		tags[perm[i]] = tag.V0
	}
	for i := 0; i < n1; i++ {
		tags[perm[n/2+i]] = tag.V1 // disjoint positions: perm[n/2..] vs perm[..n/2)
	}
	return tags
}

// TestEpsDivideBalances checks Table 6's contract: after dividing, real
// and dummy 0s total n/2 and real and dummy 1s total n/2, every ε gets a
// dummy label, and non-ε inputs are untouched.
func TestEpsDivideBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{2, 4, 8, 64, 512} {
		for trial := 0; trial < 50; trial++ {
			tags := randomQuasiTags(rng, n)
			out, err := EpsDivide(tags)
			if err != nil {
				t.Fatalf("EpsDivide(%v): %v", tags, err)
			}
			zeros, ones := 0, 0
			for i, v := range out {
				if tags[i] != tag.Eps {
					if v != tags[i] {
						t.Fatalf("n=%d: input %d changed from %v to %v", n, i, tags[i], v)
					}
				} else if v != tag.Eps0 && v != tag.Eps1 {
					t.Fatalf("n=%d: ε input %d left as %v", n, i, v)
				}
				if v.SortBit() == 0 {
					zeros++
				} else {
					ones++
				}
			}
			if zeros != n/2 || ones != n/2 {
				t.Fatalf("n=%d: divided into %d zeros and %d ones, want %d each (input %v)",
					n, zeros, ones, n/2, tags)
			}
		}
	}
}

// TestEpsDivideRejectsOverload checks the n/2 bounds are enforced.
func TestEpsDivideRejectsOverload(t *testing.T) {
	tags := []tag.Value{tag.V1, tag.V1, tag.V1, tag.Eps}
	if _, err := EpsDivide(tags); err == nil {
		t.Error("EpsDivide accepted 3 ones in a 4-input network")
	}
	tags = []tag.Value{tag.V0, tag.V0, tag.V0, tag.V0}
	if _, err := EpsDivide(tags); err == nil {
		t.Error("EpsDivide accepted 4 zeros in a 4-input network")
	}
	tags = []tag.Value{tag.Alpha, tag.Eps, tag.Eps, tag.Eps}
	if _, err := EpsDivide(tags); err == nil {
		t.Error("EpsDivide accepted an α input")
	}
}

// TestQuasisortRoutesHalves checks the quasisorting contract of Section
// 5.2: every real 0 reaches the upper half of the outputs and every real
// 1 the lower half, with εs filling the gaps.
func TestQuasisortRoutesHalves(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 8, 32, 256} {
		for trial := 0; trial < 40; trial++ {
			tags := randomQuasiTags(rng, n)
			_, _, out, err := QuasisortRoute(n, tags)
			if err != nil {
				t.Fatalf("QuasisortRoute(%v): %v", tags, err)
			}
			in := tag.Count(tags)
			oc := tag.Count(out)
			if oc != in {
				t.Fatalf("n=%d: quasisort changed counts from %+v to %+v", n, in, oc)
			}
			for i, v := range out {
				if v == tag.V0 && i >= n/2 {
					t.Fatalf("n=%d input %v: real 0 at lower-half output %d (%v)", n, tags, i, out)
				}
				if v == tag.V1 && i < n/2 {
					t.Fatalf("n=%d input %v: real 1 at upper-half output %d (%v)", n, tags, i, out)
				}
			}
		}
	}
}

// TestQuasisortPreservesPayloads routes identified payloads and checks
// that each non-idle input appears exactly once at the outputs.
func TestQuasisortPreservesPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	type item struct {
		id int
		v  tag.Value
	}
	for _, n := range []int{8, 64} {
		tags := randomQuasiTags(rng, n)
		p, _, err := QuasisortPlan(n, tags)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]item, n)
		for i := range in {
			in[i] = item{i, tags[i]}
		}
		out, err := Apply(p, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		for _, it := range out {
			if seen[it.id] {
				t.Fatalf("n=%d: payload %d duplicated", n, it.id)
			}
			seen[it.id] = true
		}
	}
}

// TestEpsDivideParallelEngineAgrees checks engine equivalence for the
// ε-dividing algorithm.
func TestEpsDivideParallelEngineAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	par := Engine{Workers: 8}
	for _, n := range []int{4, 512, 4096} {
		tags := randomQuasiTags(rng, n)
		a, err := EpsDivide(tags)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.EpsDivide(tags)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: engines disagree at input %d: %v vs %v", n, i, a[i], b[i])
			}
		}
	}
}
