package rbn

import (
	"fmt"
	"math/bits"

	"brsmn/internal/seq"
	"brsmn/internal/swbox"
	"brsmn/internal/tag"
)

// Word-parallel sweep kernels.
//
// The scalar sweeps in bitsort.go, epsdivide.go and scatter.go walk the
// RBN's embedded binary tree one tag per iteration. These kernels run the
// same algorithms over 64 links per step: the tag vector lives in the
// Table 1 bitplanes of a tag.PackedVec, per-node counts come from
// popcounts over masked plane words, and every emitted column is at most
// two or three runs of identical swbox.Settings written as run-fills.
// They are exact drop-in replacements — the plans (and the ε-divided
// vector, and every error message) are byte-identical to the scalar
// reference, which kernels_test.go proves differentially.
//
// Shape of the rewrite, per algorithm:
//
//   - bit sort: the forward γ-count sweep materializes per-node counts
//     only at and above the word level (a level-6 node is exactly one
//     plane word, so its count is one popcount); below the word level a
//     node's count is a masked popcount computed on demand during the
//     backward sweep, which touches each node once anyway. The backward
//     Lemma 1 emission W^h_{0,s1} is two contiguous fills.
//   - ε-divide: the greedy-left dummy-0 split of Table 6 assigns dummy
//      0s to the first ne0 εs in link order (the left-child min() cascade
//     is exactly a stable prefix take), so the whole backward budget tree
//     collapses to one root subtraction plus a rank cutoff over the ε
//     plane — no per-node arrays at all.
//   - scatter: the forward dominating-type reduction is the signed sum
//     v = #α − #ε per node (addition adds same-type surpluses,
//     cancellation is the sign arithmetic; v == 0 is the canonical ε of
//     the scalar code), so one signed int per node at and above the word
//     level and masked popcount pairs below it replace the scatterNode
//     tree. The backward Lemma 1–5 dispatch is unchanged per node; its
//     compact sequences were already run-fills after the seq rewrite.
//
// The kernels run on the caller's goroutine regardless of Engine.Workers:
// at 64 lanes per step a 1024-link sweep is a few hundred nanoseconds,
// far below any useful parFor grain. Coarse parallelism stays where it
// pays — across BSN subtrees in the planner's recursion.

// packedMinN is the smallest network the packed kernels accept: one full
// 64-lane word per plane, which also guarantees every tree level at or
// above level 6 is whole words and needs no tail masking.
const packedMinN = 64

// usePacked reports whether the packed kernels should serve a size-n
// call on this engine.
func (e Engine) usePacked(n int) bool { return !e.Scalar && n >= packedMinN }

// fillHalves emits the Lemma 1 column W^h_{0,s1;bset,bset'} for one
// node: the first s1 switches carry bset, the rest its opposite.
func fillHalves(dst []swbox.Setting, s1 int, bset swbox.Setting) {
	seq.Fill(dst[:s1], bset)
	seq.Fill(dst[s1:], bset.Opposite())
}

// packGammaBits packs a boolean γ vector into a bitmap; len(gamma) must
// be a multiple of 64.
func packGammaBits(dst []uint64, gamma []bool) {
	var acc uint64
	wi := 0
	for i, g := range gamma {
		if g {
			acc |= 1 << (uint(i) & 63)
		}
		if uint(i)&63 == 63 {
			dst[wi] = acc
			acc = 0
			wi++
		}
	}
}

// subCount returns the population of the level-lvl node idx of bitmap g
// for lvl < 6: the node spans 2^lvl bits inside a single word.
func subCount(g []uint64, lvl, idx int) int {
	start := idx << lvl
	mask := uint64(1)<<(1<<lvl) - 1
	return bits.OnesCount64(g[start>>6] >> (uint(start) & 63) & mask)
}

// packedBitSort is BitSortPlanInto over a γ bitmap. ls rows 6..m-1 of sc
// are reused for the materialized word-level-and-up counts.
func packedBitSort(p *Plan, g []uint64, s int, sc *Scratch) error {
	n, m := p.N, p.M
	ls := sc.ls

	// Forward phase: one popcount per word at level 6, halving sums above.
	for w := range g {
		ls[6][w] = bits.OnesCount64(g[w])
	}
	for j := 7; j <= m; j++ {
		prev, cur := ls[j-1], ls[j]
		for b := 0; b < n>>j; b++ {
			cur[b] = prev[2*b] + prev[2*b+1]
		}
	}

	// Backward phase: Lemma 1 per node, columns emitted as two fills.
	ss := sc.ss
	ss[m][0] = s
	for j := m; j >= 1; j-- {
		h := 1 << (j - 1)
		col := p.Stages[j-1]
		cur := ss[j]
		for b := 0; b < n>>j; b++ {
			sNode := cur[b]
			var l0 int
			if j-1 >= 6 {
				l0 = ls[j-1][2*b]
			} else {
				l0 = subCount(g, j-1, 2*b)
			}
			s1 := (sNode + l0) % h
			if j > 1 { // level-0 starting positions are never read
				ss[j-1][2*b] = sNode % h
				ss[j-1][2*b+1] = s1
			}
			fillHalves(col[b*h:b*h+h], s1, swbox.Setting(((sNode+l0)/h)%2))
		}
	}
	return nil
}

// epsInvalidInputError reproduces the scalar leaf sweep's validation
// error: the sequential sweep overwrites sc.err as it scans, so the last
// offending index wins.
func epsInvalidInputError(tags []tag.Value) error {
	idx, bad := -1, tag.Value(0)
	for i, v := range tags {
		if v != tag.V0 && v != tag.V1 && v != tag.Eps {
			idx, bad = i, v
		}
	}
	return fmt.Errorf("rbn: ε-divide input %d carries %v; want 0, 1 or ε", idx, bad)
}

// packedEpsDivide is EpsDivideInto over the packed planes of tags. When
// g is non-nil it additionally emits the sort-bit bitmap of the divided
// vector (the γ input of the quasisorting bit sort), fusing the relabel
// pass with the γ extraction.
func packedEpsDivide(dst []tag.Value, tags []tag.Value, sc *Scratch, g []uint64) error {
	n := len(tags)
	pv := &sc.pv
	hasDummies, perr := pv.PackInto(tags)
	var alphaAny uint64
	if perr == nil {
		for w := 0; w < n>>6; w++ {
			alphaAny |= pv.AlphaWord(w)
		}
	}
	if perr != nil || hasDummies || alphaAny != 0 {
		return epsInvalidInputError(tags)
	}

	n1, ne := 0, 0
	for w := 0; w < n>>6; w++ {
		n1 += bits.OnesCount64(pv.OneWord(w))
		ne += bits.OnesCount64(pv.EpsWord(w))
	}
	n0 := n - n1 - ne
	if n1 > n/2 {
		return fmt.Errorf("rbn: ε-divide input has %d ones, more than n/2 = %d", n1, n/2)
	}
	if n0 > n/2 {
		return fmt.Errorf("rbn: ε-divide input has %d zeros, more than n/2 = %d", n0, n/2)
	}

	// The greedy-left backward split hands dummy 0s to the first ne0 εs
	// in link order (see the package comment), so relabelling is a rank
	// cutoff over the ε plane: ε ranks below ne0 become ε0, the rest ε1.
	ne0 := ne - (n/2 - n1)
	copy(dst, tags)
	rank := 0
	for w := 0; w < n>>6; w++ {
		ew := pv.EpsWord(w)
		k := bits.OnesCount64(ew)
		var after uint64 // ε lanes of this word at rank >= ne0
		switch {
		case rank >= ne0:
			after = ew
		case rank+k <= ne0:
			after = 0
		default:
			after = ew
			for d := ne0 - rank; d > 0; d-- {
				after &= after - 1 // drop the lowest surviving ε lane
			}
		}
		if g != nil {
			g[w] = pv.OneWord(w) | after
		}
		base := w << 6
		for x := ew &^ after; x != 0; x &= x - 1 {
			dst[base+bits.TrailingZeros64(x)] = tag.Eps0
		}
		for x := after; x != 0; x &= x - 1 {
			dst[base+bits.TrailingZeros64(x)] = tag.Eps1
		}
		rank += k
	}
	return nil
}

// scatterInvalidInputError reproduces the scalar scatter leaf sweep's
// validation error (last offending index wins, as in the sequential
// scalar sweep).
func scatterInvalidInputError(tags []tag.Value) error {
	idx, bad := -1, tag.Value(0)
	for i, v := range tags {
		if !v.Valid() {
			idx, bad = i, v
		}
	}
	return fmt.Errorf("rbn: input %d carries invalid tag %v", idx, bad)
}

// subSurplus returns the signed surplus v = #α − #ε of the level-lvl
// node idx for lvl < 6, from masked popcounts of the α and ε planes.
func subSurplus(pv *tag.PackedVec, lvl, idx int) int {
	start := idx << lvl
	w, sh := start>>6, uint(start)&63
	mask := uint64(1)<<(1<<lvl) - 1
	return bits.OnesCount64(pv.AlphaWord(w)>>sh&mask) -
		bits.OnesCount64(pv.EpsWord(w)>>sh&mask)
}

// packedScatter is ScatterPlanInto over the packed planes of tags. The
// scatterNode tree collapses to the signed per-node surplus v = #α − #ε:
// |v| is the scalar node's l, its sign the dominating type (v <= 0 is
// the canonical ε), and v is additive across children.
func packedScatter(p *Plan, tags []tag.Value, s int, sc *Scratch) error {
	n, m := p.N, p.M
	pv := &sc.pv
	if _, perr := pv.PackInto(tags); perr != nil {
		return scatterInvalidInputError(tags)
	}

	// Forward phase: materialize v at and above the word level, reusing
	// the ls rows (the bit-sort counts of a different call).
	vs := sc.ls
	for w := 0; w < n>>6; w++ {
		vs[6][w] = bits.OnesCount64(pv.AlphaWord(w)) - bits.OnesCount64(pv.EpsWord(w))
	}
	for j := 7; j <= m; j++ {
		prev, cur := vs[j-1], vs[j]
		for b := 0; b < n>>j; b++ {
			cur[b] = prev[2*b] + prev[2*b+1]
		}
	}

	// Backward phase: the scalar Lemma 1–5 dispatch per node, children's
	// (l, typ) decoded from their signed surpluses.
	ss := sc.ss
	ss[m][0] = s
	for j := m; j >= 1; j-- {
		h := 1 << (j - 1)
		col := p.Stages[j-1]
		cur := ss[j]
		for b := 0; b < n>>j; b++ {
			var v0, v1 int
			if j-1 >= 6 {
				v0, v1 = vs[j-1][2*b], vs[j-1][2*b+1]
			} else {
				v0, v1 = subSurplus(pv, j-1, 2*b), subSurplus(pv, j-1, 2*b+1)
			}
			sNode := cur[b]
			l0, l1 := v0, v1
			if l0 < 0 {
				l0 = -l0
			}
			if l1 < 0 {
				l1 = -l1
			}
			typ0Alpha := v0 > 0 // v == 0 is canonical ε
			typ1Alpha := v1 > 0
			if typ0Alpha == typ1Alpha {
				// ε/α-addition: Lemma 1 with l = l0 + l1.
				s1 := (sNode + l0) % h
				if j > 1 {
					ss[j-1][2*b] = sNode % h
					ss[j-1][2*b+1] = s1
				}
				fillHalves(col[b*h:b*h+h], s1, swbox.Setting(((sNode+l0)/h)%2))
				continue
			}
			// ε/α-elimination: Lemmas 2–5, exactly as the scalar sweep.
			lNode := v0 + v1
			if lNode < 0 {
				lNode = -lNode
			}
			var s0, s1 int
			var stmp, ltmp int
			var ucast swbox.Setting
			if l0 >= l1 {
				s0 = sNode % h
				s1 = (sNode + lNode) % h
				stmp, ltmp = s1, l1
				ucast = swbox.Parallel
			} else {
				s0 = (sNode + lNode) % h
				s1 = sNode % h
				stmp, ltmp = s0, l0
				ucast = swbox.Cross
			}
			if j > 1 {
				ss[j-1][2*b] = s0
				ss[j-1][2*b+1] = s1
			}
			var bcast swbox.Setting
			if typ0Alpha {
				bcast = swbox.UpperBcast
			} else {
				bcast = swbox.LowerBcast
			}
			dst := col[b*h : b*h+h]
			switch {
			case sNode+lNode < h:
				seq.CompactInto(dst, stmp, ltmp, ucast, bcast)
			case sNode < h: // and sNode+lNode >= h
				seq.TrinaryCompactInto(dst, stmp, ltmp, h-stmp-ltmp, ucast.Opposite(), bcast, ucast)
			case sNode+lNode < 2*h: // and sNode >= h
				seq.CompactInto(dst, stmp, ltmp, ucast.Opposite(), bcast)
			default: // sNode >= h and sNode+lNode >= 2h
				seq.TrinaryCompactInto(dst, stmp, ltmp, h-stmp-ltmp, ucast, bcast, ucast.Opposite())
			}
		}
	}
	return nil
}
