package rbn

import (
	"bytes"
	"math/rand"
	"testing"

	"brsmn/internal/tag"
)

// The packed kernels must be indistinguishable from the scalar reference:
// identical Stages bytes, identical ε-divided vectors, identical errors.
// Engine{Scalar: true} pins the reference; Engine{} dispatches packed for
// n >= packedMinN.

var (
	packedEng = Engine{Workers: 1}
	scalarEng = Engine{Workers: 1, Scalar: true}
)

func plansEqual(t *testing.T, label string, a, b *Plan) {
	t.Helper()
	if a.N != b.N || len(a.Stages) != len(b.Stages) {
		t.Fatalf("%s: plan shapes differ", label)
	}
	for j := range a.Stages {
		for w := range a.Stages[j] {
			if a.Stages[j][w] != b.Stages[j][w] {
				t.Fatalf("%s: stage %d switch %d: packed %v scalar %v",
					label, j, w, a.Stages[j][w], b.Stages[j][w])
			}
		}
	}
}

var kernelSizes = []int{64, 128, 256, 1024}

func TestPackedBitSortMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, n := range kernelSizes {
		pp, sp := NewPlan(n), NewPlan(n)
		psc, ssc := NewScratch(n), NewScratch(n)
		for trial := 0; trial < 50; trial++ {
			gamma := make([]bool, n)
			for i := range gamma {
				gamma[i] = rng.Intn(2) == 1
			}
			s := rng.Intn(n)
			if err := packedEng.BitSortPlanInto(pp, gamma, s, psc); err != nil {
				t.Fatal(err)
			}
			if err := scalarEng.BitSortPlanInto(sp, gamma, s, ssc); err != nil {
				t.Fatal(err)
			}
			plansEqual(t, "bitsort", pp, sp)
		}
	}
}

// balancedQuasiTags builds a valid quasisort input: n0 <= n/2 zeros,
// n1 <= n/2 ones, the rest ε, shuffled.
func balancedQuasiTags(rng *rand.Rand, n int) []tag.Value {
	n1 := rng.Intn(n/2 + 1)
	n0 := rng.Intn(n/2 + 1)
	tags := make([]tag.Value, 0, n)
	for i := 0; i < n1; i++ {
		tags = append(tags, tag.V1)
	}
	for i := 0; i < n0; i++ {
		tags = append(tags, tag.V0)
	}
	for len(tags) < n {
		tags = append(tags, tag.Eps)
	}
	rng.Shuffle(n, func(i, j int) { tags[i], tags[j] = tags[j], tags[i] })
	return tags
}

func TestPackedEpsDivideMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for _, n := range kernelSizes {
		psc, ssc := NewScratch(n), NewScratch(n)
		pd, sd := make([]tag.Value, n), make([]tag.Value, n)
		for trial := 0; trial < 50; trial++ {
			tags := balancedQuasiTags(rng, n)
			if err := packedEng.EpsDivideInto(pd, tags, psc); err != nil {
				t.Fatal(err)
			}
			if err := scalarEng.EpsDivideInto(sd, tags, ssc); err != nil {
				t.Fatal(err)
			}
			for i := range pd {
				if pd[i] != sd[i] {
					t.Fatalf("n=%d: ε-divide lane %d: packed %v scalar %v", n, i, pd[i], sd[i])
				}
			}
		}
	}
}

func TestPackedQuasisortMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for _, n := range kernelSizes {
		pp, sp := NewPlan(n), NewPlan(n)
		psc, ssc := NewScratch(n), NewScratch(n)
		pd, sd := make([]tag.Value, n), make([]tag.Value, n)
		for trial := 0; trial < 50; trial++ {
			tags := balancedQuasiTags(rng, n)
			if err := packedEng.QuasisortPlanInto(pp, pd, tags, psc); err != nil {
				t.Fatal(err)
			}
			if err := scalarEng.QuasisortPlanInto(sp, sd, tags, ssc); err != nil {
				t.Fatal(err)
			}
			plansEqual(t, "quasisort", pp, sp)
			for i := range pd {
				if pd[i] != sd[i] {
					t.Fatalf("n=%d: divided lane %d: packed %v scalar %v", n, i, pd[i], sd[i])
				}
			}
		}
	}
}

func TestPackedScatterMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	pool := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps, tag.Eps0, tag.Eps1}
	for _, n := range kernelSizes {
		pp, sp := NewPlan(n), NewPlan(n)
		psc, ssc := NewScratch(n), NewScratch(n)
		for trial := 0; trial < 50; trial++ {
			tags := make([]tag.Value, n)
			for i := range tags {
				tags[i] = pool[rng.Intn(len(pool))]
			}
			s := rng.Intn(n)
			if err := packedEng.ScatterPlanInto(pp, tags, s, psc); err != nil {
				t.Fatal(err)
			}
			if err := scalarEng.ScatterPlanInto(sp, tags, s, ssc); err != nil {
				t.Fatal(err)
			}
			plansEqual(t, "scatter", pp, sp)
		}
	}
}

func TestPackedErrorsMatchScalar(t *testing.T) {
	n := 64
	check := func(label string, pe, se error) {
		t.Helper()
		if se == nil || pe == nil {
			t.Fatalf("%s: packed err %v, scalar err %v", label, pe, se)
		}
		if pe.Error() != se.Error() {
			t.Fatalf("%s: packed %q scalar %q", label, pe, se)
		}
	}
	// ε-divide: invalid value, dummy input, and both overloads.
	bad := make([]tag.Value, n)
	bad[3] = tag.Alpha
	bad[9] = tag.Eps1
	dst := make([]tag.Value, n)
	check("eps invalid", packedEng.EpsDivideInto(dst, bad, nil), scalarEng.EpsDivideInto(dst, bad, nil))
	ones := make([]tag.Value, n)
	for i := range ones {
		ones[i] = tag.V1
	}
	check("eps ones", packedEng.EpsDivideInto(dst, ones, nil), scalarEng.EpsDivideInto(dst, ones, nil))
	zeros := make([]tag.Value, n)
	check("eps zeros", packedEng.EpsDivideInto(dst, zeros, nil), scalarEng.EpsDivideInto(dst, zeros, nil))
	// scatter: invalid tag value.
	inv := make([]tag.Value, n)
	inv[17] = tag.Value(9)
	inv[41] = tag.Value(7)
	pp, sp := NewPlan(n), NewPlan(n)
	check("scatter invalid", packedEng.ScatterPlanInto(pp, inv, 0, nil), scalarEng.ScatterPlanInto(sp, inv, 0, nil))
}

// FuzzPackedKernels drives all three kernels from one fuzzed byte string:
// every byte yields a tag lane and a γ bit, the first two bytes a starting
// position. Packed and scalar engines must agree on plans, divided
// vectors, and error presence for arbitrary (including invalid) inputs.
func FuzzPackedKernels(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(bytes.Repeat([]byte{0x35}, 130))
	f.Fuzz(func(t *testing.T, data []byte) {
		n := 64
		if len(data) > 128 {
			n = 128
		}
		tags := make([]tag.Value, n)
		gamma := make([]bool, n)
		s := 0
		if len(data) > 0 {
			s = int(data[0]) % n
		}
		for i := 0; i < n; i++ {
			var b byte
			if i < len(data) {
				b = data[i]
			}
			tags[i] = tag.Value(b % 7) // includes one invalid value
			gamma[i] = b&0x80 != 0
		}

		pp, sp := NewPlan(n), NewPlan(n)
		if err := packedEng.BitSortPlanInto(pp, gamma, s, nil); err != nil {
			t.Fatal(err)
		}
		if err := scalarEng.BitSortPlanInto(sp, gamma, s, nil); err != nil {
			t.Fatal(err)
		}
		plansEqual(t, "bitsort", pp, sp)

		pe := packedEng.ScatterPlanInto(pp, tags, s, nil)
		se := scalarEng.ScatterPlanInto(sp, tags, s, nil)
		if (pe == nil) != (se == nil) {
			t.Fatalf("scatter: packed err %v scalar err %v", pe, se)
		}
		if pe == nil {
			plansEqual(t, "scatter", pp, sp)
		} else if pe.Error() != se.Error() {
			t.Fatalf("scatter errors differ: %q vs %q", pe, se)
		}

		pd, sd := make([]tag.Value, n), make([]tag.Value, n)
		pe = packedEng.QuasisortPlanInto(pp, pd, tags, nil)
		se = scalarEng.QuasisortPlanInto(sp, sd, tags, nil)
		if (pe == nil) != (se == nil) {
			t.Fatalf("quasisort: packed err %v scalar err %v", pe, se)
		}
		if pe == nil {
			plansEqual(t, "quasisort", pp, sp)
			for i := range pd {
				if pd[i] != sd[i] {
					t.Fatalf("divided lane %d: packed %v scalar %v", i, pd[i], sd[i])
				}
			}
		} else if pe.Error() != se.Error() {
			t.Fatalf("quasisort errors differ: %q vs %q", pe, se)
		}
	})
}
