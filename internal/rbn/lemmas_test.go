package rbn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"brsmn/internal/seq"
	"brsmn/internal/swbox"
	"brsmn/internal/tag"
)

// mergeStagePlan builds an n x n plan whose first m-1 columns are identity
// (all parallel) and whose final column carries the given n/2 settings —
// an isolated n x n merging network, for testing the merge lemmas
// directly.
func mergeStagePlan(t *testing.T, n int, settings []swbox.Setting) *Plan {
	t.Helper()
	if len(settings) != n/2 {
		t.Fatalf("mergeStagePlan: %d settings for n=%d", len(settings), n)
	}
	p := NewPlan(n)
	copy(p.Stages[p.M-1], settings)
	return p
}

// TestLemma1Merge exhaustively checks Lemma 1 (Appendix A / Fig. 14): for
// every n, s, l0, l1, the prescribed binary compact setting merges
// C_{s0,l0} and C_{s1,l1} into C_{s,l0+l1}.
func TestLemma1Merge(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		h := n / 2
		for s := 0; s < n; s++ {
			for l0 := 0; l0 <= h; l0++ {
				for l1 := 0; l1 <= h; l1++ {
					l := l0 + l1
					if l > n {
						continue
					}
					s0 := s % h
					s1 := (s + l0) % h
					b := swbox.Setting(((s + l0) / h) % 2)
					settings := seq.BinaryCompact(h, 0, s1, b.Opposite(), b)
					p := mergeStagePlan(t, n, settings)
					in := append(seq.Compact(h, s0, l0, 0, 1), seq.Compact(h, s1, l1, 0, 1)...)
					out, err := Apply(p, in, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !seq.IsCompact(out, s, l, 0, 1) {
						t.Fatalf("n=%d s=%d l0=%d l1=%d: merged %v is not C_{%d,%d}", n, s, l0, l1, out, s, l)
					}
				}
			}
		}
	}
}

// lemmaSettings computes the elimination switch settings shared by
// Lemmas 2–5 (they are the Table 4 unified cases). upperAlpha says the αs
// enter on the upper half (Lemmas 2/3) or lower half (Lemmas 4/5);
// upperDominates says l0 >= l1 (Lemmas 2/4) or not (Lemmas 3/5).
func lemmaSettings(n, s, l, l0, l1 int, upperAlpha bool) []swbox.Setting {
	h := n / 2
	var s0, s1, stmp, ltmp int
	var ucast swbox.Setting
	if l0 >= l1 {
		s0 = s % h
		s1 = (s + l) % h
		stmp, ltmp = s1, l1
		ucast = swbox.Parallel
	} else {
		s0 = (s + l) % h
		s1 = s % h
		stmp, ltmp = s0, l0
		ucast = swbox.Cross
	}
	_ = s0
	bcast := swbox.LowerBcast
	if upperAlpha {
		bcast = swbox.UpperBcast
	}
	switch {
	case s+l < h:
		return seq.BinaryCompact(h, stmp, ltmp, ucast, bcast)
	case s < h:
		return seq.TrinaryCompact(h, stmp, ltmp, h-stmp-ltmp, ucast.Opposite(), bcast, ucast)
	case s+l < n:
		return seq.BinaryCompact(h, stmp, ltmp, ucast.Opposite(), bcast)
	default:
		return seq.TrinaryCompact(h, stmp, ltmp, h-stmp-ltmp, ucast, bcast, ucast.Opposite())
	}
}

// checkEliminationLemma verifies one elimination merge: the upper half
// carries |l0| of upType, the lower |l1| of lowType, and the merged output
// must be C_{s, |l0-l1|} of the dominating type with every minority value
// neutralized to χ.
func checkEliminationLemma(t *testing.T, n, s, l0, l1 int, upType, lowType tag.Value) {
	t.Helper()
	h := n / 2
	l := l0 - l1
	if l < 0 {
		l = -l
	}
	upperAlpha := upType == tag.Alpha
	var s0, s1 int
	if l0 >= l1 {
		s0, s1 = s%h, (s+l)%h
	} else {
		s0, s1 = (s+l)%h, s%h
	}
	settings := lemmaSettings(n, s, l, l0, l1, upperAlpha)
	p := mergeStagePlan(t, n, settings)
	in := append(seq.Compact(h, s0, l0, tag.V0, upType), seq.Compact(h, s1, l1, tag.V0, lowType)...)
	out, err := ApplyTags(p, in)
	if err != nil {
		t.Fatalf("n=%d s=%d l0=%d l1=%d up=%v low=%v: %v", n, s, l0, l1, upType, lowType, err)
	}
	dom := upType
	if l1 > l0 {
		dom = lowType
	}
	classed := make([]tag.Value, n)
	for i, v := range out {
		if v.IsChi() {
			classed[i] = tag.V0
		} else {
			classed[i] = v
		}
	}
	if !seq.IsCompact(classed, s, l, tag.V0, dom) {
		t.Fatalf("n=%d s=%d l0=%d l1=%d up=%v low=%v: merged %v is not C_{%d,%d;χ,%v}",
			n, s, l0, l1, upType, lowType, out, s, l, dom)
	}
}

// TestLemma2Merge checks Lemma 2 (Appendix B / Fig. 15): upper αs with
// l0 >= l1 lower εs merge to a compact α run.
func TestLemma2Merge(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		h := n / 2
		for s := 0; s < n; s++ {
			for l0 := 0; l0 <= h; l0++ {
				for l1 := 0; l1 <= l0; l1++ {
					checkEliminationLemma(t, n, s, l0, l1, tag.Alpha, tag.Eps)
				}
			}
		}
	}
}

// TestLemma3Merge checks Lemma 3: upper αs with l1 >= l0 lower εs merge
// to a compact ε run.
func TestLemma3Merge(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		h := n / 2
		for s := 0; s < n; s++ {
			for l1 := 0; l1 <= h; l1++ {
				for l0 := 0; l0 <= l1; l0++ {
					checkEliminationLemma(t, n, s, l0, l1, tag.Alpha, tag.Eps)
				}
			}
		}
	}
}

// TestLemma4Merge checks Lemma 4: upper εs with l0 >= l1 lower αs merge
// to a compact ε run.
func TestLemma4Merge(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		h := n / 2
		for s := 0; s < n; s++ {
			for l0 := 0; l0 <= h; l0++ {
				for l1 := 0; l1 <= l0; l1++ {
					checkEliminationLemma(t, n, s, l0, l1, tag.Eps, tag.Alpha)
				}
			}
		}
	}
}

// TestLemma5Merge checks Lemma 5: upper εs with l1 >= l0 lower αs merge
// to a compact α run.
func TestLemma5Merge(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		h := n / 2
		for s := 0; s < n; s++ {
			for l1 := 0; l1 <= h; l1++ {
				for l0 := 0; l0 <= l1; l0++ {
					checkEliminationLemma(t, n, s, l0, l1, tag.Eps, tag.Alpha)
				}
			}
		}
	}
}

// TestTheorem1 re-states Theorem 1 at RBN granularity (the recursive
// composition of Lemma 1): covered more broadly by the bit-sort tests,
// pinned here on the paper's special case C_{n/2,n/2;0,1}.
func TestTheorem1(t *testing.T) {
	n := 16
	gamma := make([]bool, n)
	for i := 0; i < n; i += 2 {
		gamma[i] = true
	}
	_, out, err := BitSortRoute(n, gamma, n/2)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.IsCompact(out, n/2, n/2, false, true) {
		t.Fatalf("output %v is not 0^8 1^8", out)
	}
}

// TestTheorem3 property-tests the scatter theorem via testing/quick:
// for arbitrary tag vectors (any nα/nε relation) and any starting
// position, the dominating type's surplus lands as a circular compact
// run and the minority type is eliminated.
func TestTheorem3(t *testing.T) {
	vals := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps}
	f := func(packed uint64, sRaw uint8) bool {
		n := 32
		tags := make([]tag.Value, n)
		for i := range tags {
			tags[i] = vals[packed>>(2*uint(i))&3]
		}
		s := int(sRaw) % n
		_, out, err := ScatterRoute(n, tags, s)
		if err != nil {
			return false
		}
		in := tag.Count(tags)
		dom, l := tag.Eps, in.NEps-in.NAlpha
		if in.NAlpha > in.NEps {
			dom, l = tag.Alpha, in.NAlpha-in.NEps
		}
		classed := make([]tag.Value, n)
		for i, v := range out {
			classed[i] = v
			if v.IsChi() {
				classed[i] = tag.V0
			}
		}
		return seq.IsCompact(classed, s, l, tag.V0, dom)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem2 property-tests the scatter network in its BSN setting:
// under the eq. (2) input constraints, all αs are eliminated and the
// output counts obey eq. (4).
func TestTheorem2(t *testing.T) {
	rngSrc := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		n := []int{8, 16, 64}[uint64(seed)%3]
		rng := rand.New(rand.NewSource(seed ^ rngSrc.Int63()))
		tags := randomBSNTags(rng, n)
		in := tag.Count(tags)
		if in.CheckBSNInput(n) != nil {
			return false
		}
		_, out, err := ScatterRoute(n, tags, rng.Intn(n))
		if err != nil {
			return false
		}
		oc := tag.Count(out)
		return oc == in.AfterScatter() && oc.NAlpha == 0 &&
			oc.N0 <= n/2 && oc.N1 <= n/2 && oc.N0+oc.N1+oc.NEps == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
