// Package rbn implements the reverse banyan network (RBN) of Yang & Wang
// (Section 4) and the three distributed self-routing switch-setting
// algorithms that run on it:
//
//   - bit sorting (Table 3, Lemma 1 / Theorem 1),
//   - scattering, which eliminates α tags by pairing each with an ε via
//     broadcast switches (Table 4 + Table 5, Lemmas 1–5, Theorems 2–3),
//   - ε-dividing, which relabels idle inputs as dummy 0s/1s so a plain
//     bit-sorting pass quasisorts a partial assignment (Table 6).
//
// An n x n RBN is two n/2 x n/2 RBNs followed by a perfect-shuffle merging
// stage of n/2 switches (Fig. 5). Unrolled, the network is log2(n) columns
// of n/2 switches; column j (0-based) holds the merging stages of all
// sub-RBNs of size 2^(j+1). Switch w of column j belongs to the sub-RBN
// covering links [b*2^(j+1), (b+1)*2^(j+1)) with b = w / 2^j, and joins
// the link pair {base+i, base+i+2^j} with i = w mod 2^j — the logical pair
// model of the merging network (see package shuffle for the equivalence
// with the physical perfect-shuffle wiring).
package rbn

import (
	"fmt"

	"brsmn/internal/shuffle"
	"brsmn/internal/swbox"
	"brsmn/internal/tag"
)

// Plan is a fully computed switch setting for an n x n reverse banyan
// network: Stages[j][w] is the setting of switch w in column j. A zero
// setting is Parallel, so a freshly allocated Plan routes every input
// straight through.
type Plan struct {
	N      int
	M      int // log2(N): number of stages
	Stages [][]swbox.Setting
}

// NewPlan allocates an all-parallel plan for an n x n RBN (n a power of
// two, n >= 2). The stage columns share one flat backing array, so a
// plan costs three allocations regardless of depth.
func NewPlan(n int) *Plan {
	if !shuffle.IsPow2(n) || n < 2 {
		panic(fmt.Sprintf("rbn: network size %d is not a power of two >= 2", n))
	}
	m := shuffle.Log2(n)
	flat := make([]swbox.Setting, m*(n/2))
	st := make([][]swbox.Setting, m)
	for j := range st {
		st[j] = flat[j*(n/2) : (j+1)*(n/2) : (j+1)*(n/2)]
	}
	return &Plan{N: n, M: m, Stages: st}
}

// Pair returns the two link positions joined by switch w of column j.
func (p *Plan) Pair(j, w int) (p0, p1 int) {
	h := 1 << j
	b := w / h
	i := w % h
	base := b * 2 * h
	return base + i, base + i + h
}

// SwitchIndex returns the column-j switch index joining positions
// base+i and base+i+2^j for the sub-RBN block starting at link `base`.
func (p *Plan) SwitchIndex(j, base, i int) int {
	return base/2 + i // block b = base / 2^(j+1); w = b*2^j + i = base/2 + i
}

// NumSwitches returns the total switch count, (n/2) * log2(n).
func (p *Plan) NumSwitches() int { return p.N / 2 * p.M }

// CountSettings tallies how many switches hold each setting.
func (p *Plan) CountSettings() [swbox.NumSettings]int {
	var c [swbox.NumSettings]int
	for _, col := range p.Stages {
		for _, s := range col {
			c[s]++
		}
	}
	return c
}

// Validate checks structural consistency of the plan.
func (p *Plan) Validate() error {
	if !shuffle.IsPow2(p.N) || p.N < 2 {
		return fmt.Errorf("rbn: plan size %d is not a power of two >= 2", p.N)
	}
	if p.M != shuffle.Log2(p.N) {
		return fmt.Errorf("rbn: plan has M = %d, want log2(%d) = %d", p.M, p.N, shuffle.Log2(p.N))
	}
	if len(p.Stages) != p.M {
		return fmt.Errorf("rbn: plan has %d stages, want %d", len(p.Stages), p.M)
	}
	for j, col := range p.Stages {
		if len(col) != p.N/2 {
			return fmt.Errorf("rbn: stage %d has %d switches, want %d", j, len(col), p.N/2)
		}
		for w, s := range col {
			if !s.Valid() {
				return fmt.Errorf("rbn: stage %d switch %d has invalid setting %d", j, w, uint8(s))
			}
		}
	}
	return nil
}

// Apply routes a vector of items through the planned network, one column
// at a time. For broadcast switches, split is called on the broadcast
// source to produce the two output copies (output-0 copy first); the
// discarded input is dropped. split may be nil only if the plan contains
// no broadcast settings.
func Apply[T any](p *Plan, in []T, split func(T) (T, T)) ([]T, error) {
	return ApplyScratch(p, in, make([]T, p.N), make([]T, p.N), split)
}

// ApplyScratch is Apply routing through caller-provided ping-pong
// buffers a and b (each of length p.N): the returned slice aliases one
// of them, so a steady loop performs no per-call allocation. in may
// itself be a or b (the output of a previous ApplyScratch on the same
// buffers), in which case the copy is skipped.
func ApplyScratch[T any](p *Plan, in, a, b []T, split func(T) (T, T)) ([]T, error) {
	if len(in) != p.N {
		return nil, fmt.Errorf("rbn: %d inputs for an %d x %d network", len(in), p.N, p.N)
	}
	if len(a) != p.N || len(b) != p.N {
		return nil, fmt.Errorf("rbn: scratch buffers of length %d, %d for an %d x %d network", len(a), len(b), p.N, p.N)
	}
	cur, next := a, b
	if &in[0] == &b[0] {
		cur, next = b, a
	}
	if &in[0] != &cur[0] {
		copy(cur, in)
	}
	for j := 0; j < p.M; j++ {
		col := p.Stages[j]
		for w, s := range col {
			p0, p1 := p.Pair(j, w)
			if s.IsBroadcast() && split == nil {
				return nil, fmt.Errorf("rbn: stage %d switch %d is %v but no split function given", j, w, s)
			}
			next[p0], next[p1] = swbox.Apply(s, cur[p0], cur[p1], split)
		}
		cur, next = next, cur
	}
	return cur, nil
}

// ApplyTags routes tag values through the planned network, enforcing the
// legality rules of Fig. 3 at every switch (broadcasts require an (α, ε)
// input pair). It returns the output tag vector.
func ApplyTags(p *Plan, in []tag.Value) ([]tag.Value, error) {
	if len(in) != p.N {
		return nil, fmt.Errorf("rbn: %d input tags for an %d x %d network", len(in), p.N, p.N)
	}
	cur := append([]tag.Value(nil), in...)
	next := make([]tag.Value, p.N)
	for j := 0; j < p.M; j++ {
		for w, s := range p.Stages[j] {
			p0, p1 := p.Pair(j, w)
			o0, o1, err := swbox.ApplyTags(s, cur[p0], cur[p1])
			if err != nil {
				return nil, fmt.Errorf("rbn: stage %d switch %d: %w", j, w, err)
			}
			next[p0], next[p1] = o0, o1
		}
		cur, next = next, cur
	}
	return cur, nil
}

// Trace is like Apply but records the item vector after every stage
// (Trace[0] is the input, Trace[M] the output). It is used by the diagram
// renderer and by edge-disjointness checks.
func Trace[T any](p *Plan, in []T, split func(T) (T, T)) ([][]T, error) {
	if len(in) != p.N {
		return nil, fmt.Errorf("rbn: %d inputs for an %d x %d network", len(in), p.N, p.N)
	}
	out := make([][]T, 0, p.M+1)
	cur := append([]T(nil), in...)
	out = append(out, cur)
	for j := 0; j < p.M; j++ {
		next := make([]T, p.N)
		for w, s := range p.Stages[j] {
			p0, p1 := p.Pair(j, w)
			if s.IsBroadcast() && split == nil {
				return nil, fmt.Errorf("rbn: stage %d switch %d is %v but no split function given", j, w, s)
			}
			next[p0], next[p1] = swbox.Apply(s, cur[p0], cur[p1], split)
		}
		out = append(out, next)
		cur = next
	}
	return out, nil
}
