package rbn

import (
	"testing"

	"brsmn/internal/swbox"
	"brsmn/internal/tag"
)

// TestPlanGeometry checks Fig. 5's structure: stage j joins links at
// distance 2^j within aligned blocks of size 2^(j+1).
func TestPlanGeometry(t *testing.T) {
	p := NewPlan(16)
	if p.M != 4 || p.NumSwitches() != 32 {
		t.Fatalf("plan geometry: M=%d switches=%d", p.M, p.NumSwitches())
	}
	// Stage 0: switch w pairs (2w, 2w+1).
	for w := 0; w < 8; w++ {
		p0, p1 := p.Pair(0, w)
		if p0 != 2*w || p1 != 2*w+1 {
			t.Fatalf("stage 0 switch %d pairs (%d,%d)", w, p0, p1)
		}
	}
	// Stage 3 (full merge): switch w pairs (w, w+8).
	for w := 0; w < 8; w++ {
		p0, p1 := p.Pair(3, w)
		if p0 != w || p1 != w+8 {
			t.Fatalf("stage 3 switch %d pairs (%d,%d)", w, p0, p1)
		}
	}
	// Stage 1: blocks of 4; block 2 switch 1 pairs (9, 11).
	p0, p1 := p.Pair(1, 5)
	if p0 != 9 || p1 != 11 {
		t.Fatalf("stage 1 switch 5 pairs (%d,%d)", p0, p1)
	}
	// SwitchIndex inverts Pair's block addressing.
	if w := p.SwitchIndex(1, 8, 1); w != 5 {
		t.Fatalf("SwitchIndex(1, 8, 1) = %d, want 5", w)
	}
}

// TestPlanValidate covers the structural validator.
func TestPlanValidate(t *testing.T) {
	p := NewPlan(8)
	if err := p.Validate(); err != nil {
		t.Fatalf("fresh plan invalid: %v", err)
	}
	p.Stages[1][2] = swbox.Setting(7)
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted an invalid setting")
	}
	p.Stages[1][2] = swbox.Parallel
	p.Stages[0] = p.Stages[0][:2]
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted a short stage")
	}
	p = NewPlan(8)
	p.M = 5
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted wrong M")
	}
	p = NewPlan(8)
	p.Stages = p.Stages[:2]
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted missing stages")
	}
	bad := &Plan{N: 6}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted non-power-of-two size")
	}
}

// TestApplyErrors covers the Apply error paths.
func TestApplyErrors(t *testing.T) {
	p := NewPlan(4)
	if _, err := Apply(p, []int{1, 2, 3}, nil); err == nil {
		t.Error("Apply accepted mismatched width")
	}
	p.Stages[0][0] = swbox.UpperBcast
	if _, err := Apply(p, []int{1, 2, 3, 4}, nil); err == nil {
		t.Error("Apply accepted a broadcast with no split function")
	}
	if _, err := Trace(p, []int{1, 2, 3, 4}, nil); err == nil {
		t.Error("Trace accepted a broadcast with no split function")
	}
	if _, err := Trace(p, []int{1}, nil); err == nil {
		t.Error("Trace accepted mismatched width")
	}
	// ApplyTags surfaces illegal broadcasts.
	if _, err := ApplyTags(p, []tag.Value{tag.V0, tag.V0, tag.V1, tag.V1}); err == nil {
		t.Error("ApplyTags accepted an illegal broadcast")
	}
	if _, err := ApplyTags(p, make([]tag.Value, 2)); err == nil {
		t.Error("ApplyTags accepted mismatched width")
	}
}

// TestTraceRecordsEveryStage checks Trace's shape and consistency with
// Apply.
func TestTraceRecordsEveryStage(t *testing.T) {
	gamma := []bool{true, false, true, false, false, true, true, false}
	p, err := BitSortPlan(8, gamma, 0)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := Trace(p, gamma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != p.M+1 {
		t.Fatalf("trace has %d snapshots, want %d", len(trace), p.M+1)
	}
	out, err := Apply(p, gamma, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if trace[p.M][i] != out[i] {
			t.Fatalf("trace final row disagrees with Apply at %d", i)
		}
	}
	for i := range gamma {
		if trace[0][i] != gamma[i] {
			t.Fatalf("trace first row is not the input at %d", i)
		}
	}
}

// TestEngineChunking exercises the parallel-for split across worker
// counts, including degenerate ones.
func TestEngineChunking(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		e := Engine{Workers: workers}
		nItems := 10000
		hits := make([]int32, nItems)
		e.parallelFor(nItems, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, h)
			}
		}
	}
	// Tiny n falls back to a plain loop.
	e := ParallelEngine()
	sum := 0
	e.parallelFor(3, func(lo, hi int) { sum += hi - lo })
	if sum != 3 {
		t.Fatalf("tiny parallelFor covered %d items", sum)
	}
}

// TestNewPlanPanics covers the constructor guard.
func TestNewPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPlan(3) did not panic")
		}
	}()
	NewPlan(3)
}

// TestCountSettingsAndString smoke-checks the tally and that plans are
// printable through the diagram layer without broadcast glyph loss.
func TestCountSettingsAndString(t *testing.T) {
	tags := []tag.Value{tag.Alpha, tag.Eps, tag.V0, tag.V1}
	p, err := ScatterPlan(4, tags, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := p.CountSettings()
	total := 0
	for _, v := range c {
		total += v
	}
	if total != p.NumSwitches() {
		t.Fatalf("settings tally %d, want %d", total, p.NumSwitches())
	}
	if c[swbox.UpperBcast]+c[swbox.LowerBcast] != 1 {
		t.Fatalf("one α/ε pair should use one broadcast, tally %v", c)
	}
}
