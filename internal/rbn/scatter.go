package rbn

import (
	"fmt"

	"brsmn/internal/seq"
	"brsmn/internal/shuffle"
	"brsmn/internal/swbox"
	"brsmn/internal/tag"
)

// ScatterPlan computes switch settings for an n x n RBN acting as the
// scatter network of a binary splitting network (Section 5.1): every α
// input is paired with an ε input at some broadcast switch, where the pair
// becomes a 0 and a 1, so the outputs carry only {0, 1, ε} values
// (Theorem 2). The surviving dominating-type values (the |nε-nα| unpaired
// εs, or unpaired αs if αs dominate) appear at the outputs as a circular
// compact sequence starting at position s (Theorem 3).
//
// This is the distributed algorithm of Table 4 with the compact-setting
// subroutines of Table 5: the forward sweep computes each subtree's
// dominating type and surplus l; the backward sweep distributes starting
// positions and configures each merging stage by Lemma 1 (both children
// the same type: ε/α-addition) or Lemmas 2–5 (opposite types:
// ε/α-elimination via broadcast switches).
func ScatterPlan(n int, tags []tag.Value, s int) (*Plan, error) {
	return Sequential.ScatterPlan(n, tags, s)
}

// scatterNode is the forward-phase value of one tree node: the surplus
// count l of the dominating idle/split type and the type itself (tag.Eps
// or tag.Alpha). A node with l == 0 canonically reports type ε.
type scatterNode struct {
	l   int
	typ tag.Value
}

// ScatterPlan is the engine-parameterized form of the package-level
// function.
func (e Engine) ScatterPlan(n int, tags []tag.Value, s int) (*Plan, error) {
	if !shuffle.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("rbn: network size %d is not a power of two >= 2", n)
	}
	p := NewPlan(n)
	if err := e.ScatterPlanInto(p, tags, s, nil); err != nil {
		return nil, err
	}
	return p, nil
}

// ScatterPlanInto computes the scatter plan into p (fully overwriting
// its settings), drawing every sweep array from sc; a nil sc allocates
// transient scratch. This is the zero-allocation form used by the
// routing planner: with a warm scratch and a preallocated plan the call
// allocates nothing.
func (e Engine) ScatterPlanInto(p *Plan, tags []tag.Value, s int, sc *Scratch) error {
	n := p.N
	if len(tags) != n {
		return fmt.Errorf("rbn: %d input tags for an %d x %d network", len(tags), n, n)
	}
	if s < 0 || s >= n {
		return fmt.Errorf("rbn: starting position %d out of range [0,%d)", s, n)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.ensure(n)
	if e.usePacked(n) {
		return packedScatter(p, tags, s, sc)
	}
	m := p.M

	// Forward phase (Table 4): leaves report (1, α) for α inputs,
	// (1, ε) for idle inputs and (0, ε) for 0/1 (χ) inputs; internal
	// nodes add same-type surpluses and cancel opposite-type ones.
	//
	// Every sweep body below is a capture-free literal fed through
	// parFor with an explicit args struct, so a sequential engine runs
	// them as direct calls with no closure allocation.
	fwd := sc.fwd
	sc.err = nil
	parFor(e, n, scatterLeafArgs{fwd[0], tags, sc},
		func(a scatterLeafArgs, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := a.tags[i]
				switch {
				case v == tag.Alpha:
					a.dst[i] = scatterNode{1, tag.Alpha}
				case v.IsEps():
					a.dst[i] = scatterNode{1, tag.Eps}
				case v.IsChi():
					a.dst[i] = scatterNode{0, tag.Eps}
				default:
					a.sc.err = fmt.Errorf("rbn: input %d carries invalid tag %v", i, v)
				}
			}
		})
	if sc.err != nil {
		return sc.err
	}
	for j := 1; j <= m; j++ {
		parFor(e, n>>j, scatterFwdArgs{fwd[j-1][:n>>(j-1)], fwd[j][:n>>j]},
			func(a scatterFwdArgs, lo, hi int) {
				for b := lo; b < hi; b++ {
					c0, c1 := a.prev[2*b], a.prev[2*b+1]
					switch {
					case c0.typ == c1.typ:
						a.cur[b] = scatterNode{c0.l + c1.l, c0.typ}
					case c0.l >= c1.l:
						a.cur[b] = scatterNode{c0.l - c1.l, c0.typ}
					default:
						a.cur[b] = scatterNode{c1.l - c0.l, c1.typ}
					}
					if a.cur[b].l == 0 {
						a.cur[b].typ = tag.Eps
					}
				}
			})
	}

	// Backward phase + switch-setting phase (Table 4).
	ss := sc.ss
	ss[m][0] = s
	for j := m; j >= 1; j-- {
		h := 1 << (j - 1) // switches per node; node size n' = 2h
		args := scatterBwdArgs{
			cur: ss[j][:n>>j], child: ss[j-1],
			fprev: fwd[j-1], l: fwd[j],
			col: p.Stages[j-1], h: h,
		}
		parFor(e, n>>j, args, func(a scatterBwdArgs, lo, hi int) {
			h := a.h
			for b := lo; b < hi; b++ {
				sNode := a.cur[b]
				lNode := a.l[b].l
				c0, c1 := a.fprev[2*b], a.fprev[2*b+1]
				base := b * h
				if c0.typ == c1.typ {
					// ε/α-addition: Lemma 1 with l = l0 + l1.
					s1 := (sNode + c0.l) % h
					bset := swbox.Setting(((sNode + c0.l) / h) % 2)
					a.child[2*b] = sNode % h
					a.child[2*b+1] = s1
					for i := 0; i < h; i++ {
						if i < s1 {
							a.col[base+i] = bset
						} else {
							a.col[base+i] = bset.Opposite()
						}
					}
					continue
				}
				// ε/α-elimination: Lemmas 2–5. The child with the
				// smaller surplus has all of it cancelled by broadcast
				// switches; the larger child's remaining run is routed
				// unicast to form C_{s,l} at this node's outputs.
				var s0, s1 int
				var stmp, ltmp int
				var ucast swbox.Setting
				if c0.l >= c1.l {
					s0 = sNode % h
					s1 = (sNode + lNode) % h
					stmp, ltmp = s1, c1.l
					ucast = swbox.Parallel
				} else {
					s0 = (sNode + lNode) % h
					s1 = sNode % h
					stmp, ltmp = s0, c0.l
					ucast = swbox.Cross
				}
				a.child[2*b] = s0
				a.child[2*b+1] = s1
				var bcast swbox.Setting
				if c0.typ == tag.Alpha {
					bcast = swbox.UpperBcast
				} else {
					bcast = swbox.LowerBcast
				}
				dst := a.col[base : base+h]
				switch {
				case sNode+lNode < h:
					seq.CompactInto(dst, stmp, ltmp, ucast, bcast)
				case sNode < h: // and sNode+lNode >= h
					seq.TrinaryCompactInto(dst, stmp, ltmp, h-stmp-ltmp, ucast.Opposite(), bcast, ucast)
				case sNode+lNode < 2*h: // and sNode >= h
					seq.CompactInto(dst, stmp, ltmp, ucast.Opposite(), bcast)
				default: // sNode >= h and sNode+lNode >= 2h
					seq.TrinaryCompactInto(dst, stmp, ltmp, h-stmp-ltmp, ucast, bcast, ucast.Opposite())
				}
			}
		})
	}
	return nil
}

// Args structs for the capture-free parFor sweep bodies of
// ScatterPlanInto.
type scatterLeafArgs struct {
	dst  []scatterNode
	tags []tag.Value
	sc   *Scratch
}

type scatterFwdArgs struct{ prev, cur []scatterNode }

type scatterBwdArgs struct {
	cur, child []int
	fprev, l   []scatterNode
	col        []swbox.Setting
	h          int
}

// ScatterRoute composes ScatterPlan with tag routing and returns the plan
// and the output tags. The output contains no α values and satisfies the
// count relations of equation (4).
func ScatterRoute(n int, tags []tag.Value, s int) (*Plan, []tag.Value, error) {
	p, err := ScatterPlan(n, tags, s)
	if err != nil {
		return nil, nil, err
	}
	out, err := ApplyTags(p, tags)
	if err != nil {
		return nil, nil, err
	}
	return p, out, nil
}
