package rbn

import (
	"math/rand"
	"testing"

	"brsmn/internal/seq"
	"brsmn/internal/tag"
)

// chiClass collapses 0/1 to a single χ symbol so compact-sequence
// recognition can run over {χ, α, ε} (Section 5.1).
func chiClass(v tag.Value) tag.Value {
	if v.IsChi() {
		return tag.V0 // canonical χ
	}
	return v
}

// checkScatter verifies Theorem 3 for one input vector and starting
// position: the dominating type's surplus appears as a circular compact
// sequence C_{s, |nα-nε|} at the outputs, the minority type is fully
// eliminated, and the 0/1 counts obey equation (4)'s conservation.
func checkScatter(t *testing.T, n int, tags []tag.Value, s int) {
	t.Helper()
	_, out, err := ScatterRoute(n, tags, s)
	if err != nil {
		t.Fatalf("ScatterRoute(n=%d, tags=%v, s=%d): %v", n, tags, s, err)
	}
	in := tag.Count(tags)
	got := tag.Count(out)

	pairs := min(in.NAlpha, in.NEps)
	wantAlpha, wantEps := in.NAlpha-pairs, in.NEps-pairs
	if got.NAlpha != wantAlpha || got.NEps != wantEps {
		t.Fatalf("n=%d tags=%v s=%d: out %v has (nα=%d, nε=%d), want (%d, %d)",
			n, tags, s, out, got.NAlpha, got.NEps, wantAlpha, wantEps)
	}
	if got.N0 != in.N0+pairs || got.N1 != in.N1+pairs {
		t.Fatalf("n=%d tags=%v s=%d: out %v has (n0=%d, n1=%d), want (%d, %d) per eq. 4",
			n, tags, s, out, got.N0, got.N1, in.N0+pairs, in.N1+pairs)
	}

	// Theorem 3: the surviving dominating-type run is circular compact
	// starting at s.
	classed := make([]tag.Value, n)
	for i, v := range out {
		classed[i] = chiClass(v)
	}
	dom := tag.Eps
	if in.NAlpha > in.NEps {
		dom = tag.Alpha
	}
	l := wantEps
	if dom == tag.Alpha {
		l = wantAlpha
	}
	// Collapse the non-dominating... there is none left besides χ.
	if !seq.IsCompact(classed, s, l, tag.V0, dom) {
		t.Fatalf("n=%d tags=%v s=%d: out %v: %v-run is not C_{%d,%d}", n, tags, s, out, dom, s, l)
	}
}

// enumTags enumerates all tag vectors over {0,1,α,ε} of length n and
// calls fn on each.
func enumTags(n int, fn func([]tag.Value)) {
	vals := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps}
	tags := make([]tag.Value, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			fn(tags)
			return
		}
		for _, v := range vals {
			tags[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// TestScatterExhaustiveSmall checks Theorem 3 exhaustively for n = 2 and
// n = 4: every input vector over {0,1,α,ε}, every starting position.
// Note Theorem 3 places no constraint relating nα and nε.
func TestScatterExhaustiveSmall(t *testing.T) {
	for _, n := range []int{2, 4} {
		enumTags(n, func(tags []tag.Value) {
			for s := 0; s < n; s++ {
				checkScatter(t, n, append([]tag.Value(nil), tags...), s)
			}
		})
	}
}

// TestScatterExhaustiveN8 checks every n=8 input vector with one starting
// position (65536 vectors), plus every position on a random subsample.
func TestScatterExhaustiveN8(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive n=8 scatter check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(5))
	enumTags(8, func(tags []tag.Value) {
		cp := append([]tag.Value(nil), tags...)
		checkScatter(t, 8, cp, rng.Intn(8))
	})
}

// TestScatterRandomLarge checks Theorem 3 on random vectors for larger
// sizes, including heavily skewed α/ε mixes.
func TestScatterRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps}
	for _, n := range []int{16, 32, 64, 256, 1024} {
		for trial := 0; trial < 20; trial++ {
			tags := make([]tag.Value, n)
			// Random mixing weights to hit skewed distributions.
			w := [4]int{1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(4)}
			total := w[0] + w[1] + w[2] + w[3]
			for i := range tags {
				r := rng.Intn(total)
				for k, wk := range w {
					if r < wk {
						tags[i] = vals[k]
						break
					}
					r -= wk
				}
			}
			checkScatter(t, n, tags, rng.Intn(n))
		}
	}
}

// TestScatterBSNInputs checks Theorem 2's setting: inputs satisfying the
// BSN constraints (eq. 2) always leave zero αs and the eq. (4) counts.
func TestScatterBSNInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{4, 8, 32, 128} {
		for trial := 0; trial < 50; trial++ {
			tags := randomBSNTags(rng, n)
			c := tag.Count(tags)
			if err := c.CheckBSNInput(n); err != nil {
				t.Fatalf("generator violated BSN constraints: %v", err)
			}
			_, out, err := ScatterRoute(n, tags, rng.Intn(n))
			if err != nil {
				t.Fatal(err)
			}
			oc := tag.Count(out)
			if oc.NAlpha != 0 {
				t.Fatalf("n=%d: scatter left %d αs for BSN-legal input %v", n, oc.NAlpha, tags)
			}
			want := c.AfterScatter()
			if oc != want {
				t.Fatalf("n=%d: scatter output counts %+v, want %+v", n, oc, want)
			}
		}
	}
}

// randomBSNTags generates a tag vector satisfying the input constraints
// of a binary splitting network (eq. 1–3): it draws a random multicast-
// style demand with n0+nα <= n/2 and n1+nα <= n/2.
func randomBSNTags(rng *rand.Rand, n int) []tag.Value {
	tags := make([]tag.Value, n)
	for i := range tags {
		tags[i] = tag.Eps
	}
	upperLeft := n / 2 // remaining capacity of upper half
	lowerLeft := n / 2
	order := rng.Perm(n)
	for _, i := range order {
		switch rng.Intn(4) {
		case 0:
			if upperLeft > 0 {
				tags[i] = tag.V0
				upperLeft--
			}
		case 1:
			if lowerLeft > 0 {
				tags[i] = tag.V1
				lowerLeft--
			}
		case 2:
			if upperLeft > 0 && lowerLeft > 0 {
				tags[i] = tag.Alpha
				upperLeft--
				lowerLeft--
			}
		case 3:
			// stays ε
		}
	}
	// The construction guarantees nα <= nε? Not directly: re-check and
	// downgrade αs to εs if needed (each downgrade frees both halves).
	for {
		c := tag.Count(tags)
		if c.NAlpha <= c.NEps {
			break
		}
		for i, v := range tags {
			if v == tag.Alpha {
				tags[i] = tag.Eps
				break
			}
		}
	}
	return tags
}

// TestScatterParallelEngineAgrees checks engine equivalence for the
// scatter algorithm.
func TestScatterParallelEngineAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	par := Engine{Workers: 8}
	vals := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps}
	for _, n := range []int{2, 64, 2048} {
		tags := make([]tag.Value, n)
		for i := range tags {
			tags[i] = vals[rng.Intn(4)]
		}
		s := rng.Intn(n)
		p1, err := ScatterPlan(n, tags, s)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := par.ScatterPlan(n, tags, s)
		if err != nil {
			t.Fatal(err)
		}
		for j := range p1.Stages {
			for w := range p1.Stages[j] {
				if p1.Stages[j][w] != p2.Stages[j][w] {
					t.Fatalf("n=%d: engines disagree at stage %d switch %d", n, j, w)
				}
			}
		}
	}
}

// TestScatterErrors checks argument validation.
func TestScatterErrors(t *testing.T) {
	if _, err := ScatterPlan(6, make([]tag.Value, 6), 0); err == nil {
		t.Error("ScatterPlan accepted non-power-of-two size")
	}
	if _, err := ScatterPlan(4, make([]tag.Value, 2), 0); err == nil {
		t.Error("ScatterPlan accepted mismatched input length")
	}
	if _, err := ScatterPlan(4, make([]tag.Value, 4), 9); err == nil {
		t.Error("ScatterPlan accepted out-of-range starting position")
	}
}
