package rbn

import (
	"brsmn/internal/shuffle"
	"brsmn/internal/tag"
)

// Scratch holds the per-sweep working state of the three setting
// algorithms — the forward/backward tree arrays of ScatterPlan,
// BitSortPlan and EpsDivide plus the ε-divided tag and sort-bit vectors
// of QuasisortPlan — sized once and recycled across calls, so a steady
// planning loop performs zero per-plan allocations.
//
// A Scratch grows on demand: computing a plan for n' <= n reuses the
// prefixes of the level arrays. The zero value is ready to use (it
// allocates on first use); a Scratch is not safe for concurrent use.
type Scratch struct {
	n   int
	fwd [][]scatterNode // scatter forward phase, levels 0..m
	ss  [][]int         // backward starting positions (scatter and bit sort)
	ls  [][]int         // bit-sort forward γ counts
	ne  [][]int         // ε-divide: per-node ε counts
	n1s [][]int         // ε-divide: per-node real-1 counts
	ne0 [][]int         // ε-divide: dummy-0 budgets
	ne1 [][]int         // ε-divide: dummy-1 budgets
	// divided and gamma back QuasisortPlanInto's ε-divided tag vector
	// and its sort bits; divided is what the Into call returns, valid
	// until the scratch's next use.
	divided []tag.Value
	gamma   []bool
	// pv and pg back the packed kernels: the input tag bitplanes and the
	// γ bitmap fed to the word-parallel bit sort (one bit per link).
	pv tag.PackedVec
	pg []uint64
	// err carries a leaf-sweep validation error out of the capture-free
	// parFor bodies without boxing a per-call error variable.
	err error
}

// NewScratch returns a scratch pre-sized for n x n sweeps.
func NewScratch(n int) *Scratch {
	s := &Scratch{}
	s.ensure(n)
	return s
}

// ensure grows every array to cover size-n sweeps.
func (s *Scratch) ensure(n int) {
	if n <= s.n {
		return
	}
	m := shuffle.Log2(n)
	s.fwd = make([][]scatterNode, m+1)
	s.ss = make([][]int, m+1)
	s.ls = make([][]int, m+1)
	s.ne = make([][]int, m+1)
	s.n1s = make([][]int, m+1)
	s.ne0 = make([][]int, m+1)
	s.ne1 = make([][]int, m+1)
	for j := 0; j <= m; j++ {
		s.fwd[j] = make([]scatterNode, n>>j)
		s.ss[j] = make([]int, n>>j)
		s.ls[j] = make([]int, n>>j)
		s.ne[j] = make([]int, n>>j)
		s.n1s[j] = make([]int, n>>j)
		s.ne0[j] = make([]int, n>>j)
		s.ne1[j] = make([]int, n>>j)
	}
	s.divided = make([]tag.Value, n)
	s.gamma = make([]bool, n)
	s.pg = make([]uint64, tag.Words(n))
	s.n = n
}
