// Package sched layers admission control on top of the multicast
// network. The BRSMN realizes any *assignment* — destination sets must
// be pairwise disjoint (no output can listen to two inputs at once). Real
// workloads produce overlapping multicast *requests*; sched partitions a
// batch of requests into a small number of conflict-free rounds, each a
// valid assignment routed in one network pass.
//
// The partitioner is greedy first-fit over requests in decreasing fanout
// order, which is the classic interval-style heuristic: the number of
// rounds never exceeds the batch's conflict degree (the maximum number
// of requests sharing one output or one source), and equals it whenever
// one hot output serializes everything.
package sched

import (
	"fmt"
	"sort"

	"brsmn/internal/core"
	"brsmn/internal/mcast"
	"brsmn/internal/rbn"
)

// Request is one multicast demand: a source input and its destination
// set. Unlike assignments, requests in a batch may overlap freely.
type Request struct {
	Source int
	Dests  []int
}

// Validate checks the request against an n-port network.
func (r Request) Validate(n int) error {
	if r.Source < 0 || r.Source >= n {
		return fmt.Errorf("sched: source %d out of range [0,%d)", r.Source, n)
	}
	if len(r.Dests) == 0 {
		return fmt.Errorf("sched: request from %d has no destinations", r.Source)
	}
	seen := make(map[int]bool, len(r.Dests))
	for _, d := range r.Dests {
		if d < 0 || d >= n {
			return fmt.Errorf("sched: request from %d has destination %d out of range", r.Source, d)
		}
		if seen[d] {
			return fmt.Errorf("sched: request from %d lists destination %d twice", r.Source, d)
		}
		seen[d] = true
	}
	return nil
}

// ConflictDegree returns the largest number of requests sharing one
// output or one source — a lower bound on the number of rounds any
// schedule needs.
func ConflictDegree(n int, reqs []Request) int {
	outDeg := make([]int, n)
	srcDeg := make([]int, n)
	deg := 0
	for _, r := range reqs {
		srcDeg[r.Source]++
		if srcDeg[r.Source] > deg {
			deg = srcDeg[r.Source]
		}
		for _, d := range r.Dests {
			outDeg[d]++
			if outDeg[d] > deg {
				deg = outDeg[d]
			}
		}
	}
	return deg
}

// Schedule partitions the requests into conflict-free rounds by greedy
// first-fit in decreasing fanout order. The relative order of equal-size
// requests is kept stable, so the schedule is deterministic.
func Schedule(n int, reqs []Request) ([][]Request, error) {
	rounds, err := scheduleIdx(n, reqs)
	if err != nil {
		return nil, err
	}
	out := make([][]Request, len(rounds))
	for i, round := range rounds {
		for _, k := range round {
			out[i] = append(out[i], reqs[k])
		}
	}
	return out, nil
}

// ScheduleIndices is Schedule returning request indices per round — for
// callers (like the group manager) that must map rounds back to the
// identities behind the requests, which Source alone cannot do when two
// long-lived groups share a source.
func ScheduleIndices(n int, reqs []Request) ([][]int, error) {
	return scheduleIdx(n, reqs)
}

// scheduleIdx is Schedule returning request indices per round.
func scheduleIdx(n int, reqs []Request) ([][]int, error) {
	for _, r := range reqs {
		if err := r.Validate(n); err != nil {
			return nil, err
		}
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(reqs[order[a]].Dests) > len(reqs[order[b]].Dests)
	})

	type roundState struct {
		members []int
		outUsed []bool
		srcUsed []bool
	}
	var rounds []*roundState
place:
	for _, idx := range order {
		r := reqs[idx]
		for _, rd := range rounds {
			if rd.srcUsed[r.Source] {
				continue
			}
			ok := true
			for _, d := range r.Dests {
				if rd.outUsed[d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			rd.srcUsed[r.Source] = true
			for _, d := range r.Dests {
				rd.outUsed[d] = true
			}
			rd.members = append(rd.members, idx)
			continue place
		}
		rd := &roundState{outUsed: make([]bool, n), srcUsed: make([]bool, n)}
		rd.srcUsed[r.Source] = true
		for _, d := range r.Dests {
			rd.outUsed[d] = true
		}
		rd.members = append(rd.members, idx)
		rounds = append(rounds, rd)
	}
	out := make([][]int, len(rounds))
	for i, rd := range rounds {
		out[i] = rd.members
	}
	return out, nil
}

// Assignments converts scheduled rounds into routable assignments.
func Assignments(n int, rounds [][]Request) ([]mcast.Assignment, error) {
	out := make([]mcast.Assignment, len(rounds))
	for i, round := range rounds {
		dests := make([][]int, n)
		for _, r := range round {
			if dests[r.Source] != nil {
				return nil, fmt.Errorf("sched: round %d uses source %d twice", i, r.Source)
			}
			dests[r.Source] = append([]int(nil), r.Dests...)
		}
		a, err := mcast.New(n, dests)
		if err != nil {
			return nil, fmt.Errorf("sched: round %d: %w", i, err)
		}
		out[i] = a
	}
	return out, nil
}

// Result is a fully scheduled and routed batch.
type Result struct {
	N      int
	Rounds []mcast.Assignment
	// Routed[i] is the network result of round i.
	Routed []*core.Result
	// RoundOf[k] is the round request k was placed in (indexed like the
	// original batch).
	RoundOf []int
}

// RouteAll schedules the batch and routes every round through an n x n
// BRSMN, verifying each round's deliveries.
func RouteAll(n int, reqs []Request, eng rbn.Engine) (*Result, error) {
	roundIdx, err := scheduleIdx(n, reqs)
	if err != nil {
		return nil, err
	}
	rounds := make([][]Request, len(roundIdx))
	res := &Result{N: n, RoundOf: make([]int, len(reqs))}
	for i, round := range roundIdx {
		for _, k := range round {
			rounds[i] = append(rounds[i], reqs[k])
			res.RoundOf[k] = i
		}
	}
	as, err := Assignments(n, rounds)
	if err != nil {
		return nil, err
	}
	res.Rounds = as
	nw, err := core.New(n, eng)
	if err != nil {
		return nil, err
	}
	for i, a := range as {
		r, err := nw.Route(a)
		if err != nil {
			return nil, fmt.Errorf("sched: routing round %d: %w", i, err)
		}
		res.Routed = append(res.Routed, r)
	}
	return res, nil
}
