package sched

import (
	"math/rand"
	"testing"

	"brsmn/internal/rbn"
)

// randomRequests draws overlapping requests: sources and destinations
// chosen freely, so conflicts are common.
func randomRequests(rng *rand.Rand, n, count int) []Request {
	reqs := make([]Request, count)
	for i := range reqs {
		k := 1 + rng.Intn(n/2)
		dests := rng.Perm(n)[:k]
		reqs[i] = Request{Source: rng.Intn(n), Dests: dests}
	}
	return reqs
}

// TestScheduleRoundsAreConflictFree checks no round reuses a source or
// an output, and every request lands in exactly one round.
func TestScheduleRoundsAreConflictFree(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	for _, n := range []int{8, 32, 128} {
		for trial := 0; trial < 10; trial++ {
			reqs := randomRequests(rng, n, n)
			rounds, err := Schedule(n, reqs)
			if err != nil {
				t.Fatal(err)
			}
			placed := 0
			for i, round := range rounds {
				srcUsed := map[int]bool{}
				outUsed := map[int]bool{}
				for _, r := range round {
					if srcUsed[r.Source] {
						t.Fatalf("n=%d round %d reuses source %d", n, i, r.Source)
					}
					srcUsed[r.Source] = true
					for _, d := range r.Dests {
						if outUsed[d] {
							t.Fatalf("n=%d round %d reuses output %d", n, i, d)
						}
						outUsed[d] = true
					}
					placed++
				}
			}
			if placed != len(reqs) {
				t.Fatalf("n=%d: %d of %d requests placed", n, placed, len(reqs))
			}
			// Greedy never needs more rounds than the conflict degree
			// lower bound times ... it can exceed the lower bound, but
			// never the request count, and must meet the bound when it
			// is the count.
			if len(rounds) > len(reqs) {
				t.Fatalf("n=%d: %d rounds for %d requests", n, len(rounds), len(reqs))
			}
		}
	}
}

// TestScheduleHotOutput checks the serialization case: r requests all
// containing output 0 need exactly r rounds.
func TestScheduleHotOutput(t *testing.T) {
	n := 16
	var reqs []Request
	for i := 0; i < 5; i++ {
		reqs = append(reqs, Request{Source: i, Dests: []int{0, i + 1}})
	}
	rounds, err := Schedule(n, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 5 {
		t.Fatalf("%d rounds, want 5", len(rounds))
	}
	if ConflictDegree(n, reqs) != 5 {
		t.Fatalf("conflict degree %d, want 5", ConflictDegree(n, reqs))
	}
}

// TestScheduleDisjointSingleRound checks non-conflicting batches fit one
// round.
func TestScheduleDisjointSingleRound(t *testing.T) {
	n := 16
	reqs := []Request{
		{Source: 0, Dests: []int{1, 2, 3}},
		{Source: 4, Dests: []int{5}},
		{Source: 9, Dests: []int{10, 11}},
	}
	rounds, err := Schedule(n, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 1 {
		t.Fatalf("%d rounds, want 1", len(rounds))
	}
}

// TestRouteAllDeliversEveryRequest routes a conflicted batch and checks
// each request's destinations receive its source in its round.
func TestRouteAllDeliversEveryRequest(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for _, n := range []int{8, 32} {
		reqs := randomRequests(rng, n, n)
		res, err := RouteAll(n, reqs, rbn.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		for k, r := range reqs {
			round := res.RoundOf[k]
			if round < 0 || round >= len(res.Routed) {
				t.Fatalf("request %d has invalid round %d", k, round)
			}
			for _, d := range r.Dests {
				if got := res.Routed[round].Deliveries[d].Source; got != r.Source {
					t.Fatalf("n=%d request %d: round %d output %d delivered %d, want %d",
						n, k, round, d, got, r.Source)
				}
			}
		}
	}
}

// TestRouteAllDuplicateRequests checks identical requests serialize into
// distinct rounds (the RoundOf bookkeeping must separate them).
func TestRouteAllDuplicateRequests(t *testing.T) {
	n := 8
	reqs := []Request{
		{Source: 1, Dests: []int{2, 3}},
		{Source: 1, Dests: []int{2, 3}},
		{Source: 1, Dests: []int{2, 3}},
	}
	res, err := RouteAll(n, reqs, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for k := range reqs {
		if seen[res.RoundOf[k]] {
			t.Fatalf("duplicate requests share round %d", res.RoundOf[k])
		}
		seen[res.RoundOf[k]] = true
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("%d rounds, want 3", len(res.Rounds))
	}
}

// TestValidation checks the request checks.
func TestValidation(t *testing.T) {
	n := 8
	for _, bad := range []Request{
		{Source: -1, Dests: []int{0}},
		{Source: 8, Dests: []int{0}},
		{Source: 0, Dests: nil},
		{Source: 0, Dests: []int{9}},
		{Source: 0, Dests: []int{1, 1}},
	} {
		if err := bad.Validate(n); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
		if _, err := Schedule(n, []Request{bad}); err == nil {
			t.Errorf("Schedule accepted %+v", bad)
		}
	}
	good := Request{Source: 0, Dests: []int{1, 2}}
	if err := good.Validate(n); err != nil {
		t.Errorf("Validate rejected %+v: %v", good, err)
	}
}

// TestConflictDegree covers the bound computation.
func TestConflictDegree(t *testing.T) {
	n := 8
	reqs := []Request{
		{Source: 0, Dests: []int{1}},
		{Source: 0, Dests: []int{2}},
		{Source: 3, Dests: []int{2}},
	}
	// Source 0 twice, output 2 twice -> degree 2.
	if got := ConflictDegree(n, reqs); got != 2 {
		t.Errorf("ConflictDegree = %d, want 2", got)
	}
	if ConflictDegree(n, nil) != 0 {
		t.Error("empty batch degree nonzero")
	}
}
