// Package seq implements the circular compact sequence algebra of
// Section 4 of Yang & Wang: n-bit two-symbol sequences whose γ-run is
// contiguous modulo n (equation 5), and the binary and trinary compact
// switch-setting sequences W used by Lemmas 1–5 and Table 5.
//
// The key results of the paper are conditions under which two half-length
// circular compact sequences merge into one full-length circular compact
// sequence through a perfect-shuffle merging stage; this package provides
// the constructors and recognizers that the network packages and the tests
// build on.
package seq

import "fmt"

// Compact constructs the circular compact sequence C^n_{s,l;beta,gamma} of
// equation (5): an n-element sequence in which the l gamma-elements are
// contiguous modulo n and begin at position s, every other element being
// beta. It requires 0 <= s < n and 0 <= l <= n.
func Compact[T any](n, s, l int, beta, gamma T) []T {
	if n <= 0 || s < 0 || s >= n || l < 0 || l > n {
		panic(fmt.Sprintf("seq: Compact(n=%d, s=%d, l=%d) out of range", n, s, l))
	}
	out := make([]T, n)
	for i := range out {
		out[i] = beta
	}
	for k := 0; k < l; k++ {
		out[(s+k)%n] = gamma
	}
	return out
}

// Recognize reports whether xs is a circular compact sequence over the two
// symbols beta and gamma, and if so returns a starting position s and run
// length l such that xs == Compact(len(xs), s, l, beta, gamma).
//
// Degenerate cases: if xs contains no gamma, Recognize returns (0, 0, true)
// (any s is valid; 0 is the canonical choice); if xs is all gammas it
// returns (0, n, true). An element equal to neither symbol makes the
// recognition fail.
func Recognize[T comparable](xs []T, beta, gamma T) (s, l int, ok bool) {
	n := len(xs)
	for _, x := range xs {
		switch x {
		case gamma:
			l++
		case beta:
		default:
			return 0, 0, false
		}
	}
	if l == 0 {
		return 0, 0, true
	}
	if l == n {
		return 0, n, true
	}
	// The gamma run starts at the unique position whose circular
	// predecessor is beta.
	for i := 0; i < n; i++ {
		if xs[i] == gamma && xs[(i+n-1)%n] == beta {
			s = i
			// Verify the run is contiguous.
			for k := 0; k < l; k++ {
				if xs[(s+k)%n] != gamma {
					return 0, 0, false
				}
			}
			return s, l, true
		}
	}
	return 0, 0, false
}

// IsCompact reports whether xs is the specific circular compact sequence
// C^n_{s,l;beta,gamma}.
func IsCompact[T comparable](xs []T, s, l int, beta, gamma T) bool {
	gs, gl, ok := Recognize(xs, beta, gamma)
	if !ok || gl != l {
		return false
	}
	if l == 0 || l == len(xs) {
		return true // every s describes the same sequence
	}
	return gs == s
}

// Fill sets every element of dst to v by copy-doubling, so long runs go
// through memmove instead of an element-at-a-time store loop. It is the
// primitive behind the run-fill emitters: a compact sequence is at most
// three circular runs, each a Fill over one or two subslices.
func Fill[T any](dst []T, v T) {
	if len(dst) == 0 {
		return
	}
	dst[0] = v
	if len(dst) <= 16 {
		for i := 1; i < len(dst); i++ {
			dst[i] = v
		}
		return
	}
	for f := 1; f < len(dst); f *= 2 {
		copy(dst[f:], dst[:f])
	}
}

// FillRun fills the circular run of length l starting at position s with
// v: at most two contiguous Fills when the run wraps past the end.
// It requires 0 <= s < len(dst) and 0 <= l <= len(dst).
func FillRun[T any](dst []T, s, l int, v T) {
	if end := s + l; end <= len(dst) {
		Fill(dst[s:end], v)
	} else {
		Fill(dst[s:], v)
		Fill(dst[:end-len(dst)], v)
	}
}

// CompactInto fills dst with C^len(dst)_{s,l;beta,gamma} — the in-place
// form of Compact for hot paths that reuse a settings column instead of
// allocating one per merging node. The column is emitted as two circular
// run-fills rather than per-element stores.
func CompactInto[T any](dst []T, s, l int, beta, gamma T) {
	n := len(dst)
	if n <= 0 || s < 0 || s >= n || l < 0 || l > n {
		panic(fmt.Sprintf("seq: CompactInto(n=%d, s=%d, l=%d) out of range", n, s, l))
	}
	FillRun(dst, s, l, gamma)
	FillRun(dst, (s+l)%n, n-l, beta)
}

// BinaryCompact constructs the binary compact switch-setting sequence
// W^h_{s,l;a,b} over h switches: l consecutive switches carry setting b
// starting at position s (circularly); the remaining switches carry a.
// This is the sequence built by BinaryCompactSetting in Table 5.
func BinaryCompact[T any](h, s, l int, a, b T) []T {
	return Compact(h, s, l, a, b)
}

// TrinaryCompact constructs the trinary compact switch-setting sequence
// W^h_{s,l1,l2;a,b,c}: starting at position s, l1 consecutive switches
// carry b, the next l2 carry c, and the remaining h-l1-l2 carry a, all
// circularly (Section 4). It requires l1+l2 <= h.
func TrinaryCompact[T any](h, s, l1, l2 int, a, b, c T) []T {
	if h <= 0 || s < 0 || s >= h || l1 < 0 || l2 < 0 || l1+l2 > h {
		panic(fmt.Sprintf("seq: TrinaryCompact(h=%d, s=%d, l1=%d, l2=%d) out of range", h, s, l1, l2))
	}
	out := make([]T, h)
	for i := range out {
		out[i] = a
	}
	for k := 0; k < l1; k++ {
		out[(s+k)%h] = b
	}
	for k := 0; k < l2; k++ {
		out[(s+l1+k)%h] = c
	}
	return out
}

// TrinaryCompactInto fills dst with W^len(dst)_{s,l1,l2;a,b,c} — the
// in-place form of TrinaryCompact, emitted as three circular run-fills.
func TrinaryCompactInto[T any](dst []T, s, l1, l2 int, a, b, c T) {
	h := len(dst)
	if h <= 0 || s < 0 || s >= h || l1 < 0 || l2 < 0 || l1+l2 > h {
		panic(fmt.Sprintf("seq: TrinaryCompactInto(h=%d, s=%d, l1=%d, l2=%d) out of range", h, s, l1, l2))
	}
	FillRun(dst, s, l1, b)
	FillRun(dst, (s+l1)%h, l2, c)
	FillRun(dst, (s+l1+l2)%h, h-l1-l2, a)
}

// Rotate returns xs rotated so that element i of the result is element
// (i-k mod n) of xs; i.e. the content moves k positions forward
// (circularly). Rotating Compact(n,s,l,...) by k yields
// Compact(n,(s+k)%n,l,...).
func Rotate[T any](xs []T, k int) []T {
	n := len(xs)
	if n == 0 {
		return nil
	}
	k = ((k % n) + n) % n
	out := make([]T, n)
	for i, x := range xs {
		out[(i+k)%n] = x
	}
	return out
}

// CountOf returns the number of elements of xs equal to v.
func CountOf[T comparable](xs []T, v T) int {
	c := 0
	for _, x := range xs {
		if x == v {
			c++
		}
	}
	return c
}
