package seq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestCompactBothBranches pins the two branches of equation (5).
func TestCompactBothBranches(t *testing.T) {
	// s + l <= n: β^s γ^l β^(n-s-l)
	got := Compact[byte](8, 2, 3, 'b', 'g')
	want := []byte("bbgggbbb")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Compact(8,2,3) = %q, want %q", got, want)
	}
	// s + l > n: γ^(l-n+s) β^(n-l) γ^(n-s)
	got = Compact[byte](8, 6, 5, 'b', 'g')
	want = []byte("gggbbbgg")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Compact(8,6,5) = %q, want %q", got, want)
	}
}

// TestCompactRecognizeRoundTrip checks Recognize inverts Compact for all
// (n, s, l).
func TestCompactRecognizeRoundTrip(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for s := 0; s < n; s++ {
			for l := 0; l <= n; l++ {
				xs := Compact(n, s, l, 0, 1)
				gs, gl, ok := Recognize(xs, 0, 1)
				if !ok {
					t.Fatalf("Recognize rejected Compact(%d,%d,%d)", n, s, l)
				}
				if gl != l {
					t.Fatalf("Recognize(Compact(%d,%d,%d)) returned l=%d", n, s, l, gl)
				}
				if l != 0 && l != n && gs != s {
					t.Fatalf("Recognize(Compact(%d,%d,%d)) returned s=%d", n, s, l, gs)
				}
				if !IsCompact(xs, s, l, 0, 1) {
					t.Fatalf("IsCompact rejected Compact(%d,%d,%d)", n, s, l)
				}
			}
		}
	}
}

// TestRecognizeRejectsNonCompact checks fragmented sequences are
// rejected.
func TestRecognizeRejectsNonCompact(t *testing.T) {
	if _, _, ok := Recognize([]int{1, 0, 1, 0}, 0, 1); ok {
		t.Error("Recognize accepted 1010")
	}
	if _, _, ok := Recognize([]int{0, 1, 2, 0}, 0, 1); ok {
		t.Error("Recognize accepted a foreign symbol")
	}
	if IsCompact([]int{0, 1, 1, 0}, 2, 2, 0, 1) {
		t.Error("IsCompact matched the wrong start")
	}
}

// TestRecognizeQuick property-tests recognition against a brute-force
// circular-run check.
func TestRecognizeQuick(t *testing.T) {
	f := func(pattern uint16, nRaw uint8) bool {
		n := int(nRaw%15) + 1
		xs := make([]int, n)
		l := 0
		for i := range xs {
			if pattern>>i&1 == 1 {
				xs[i] = 1
				l++
			}
		}
		_, _, ok := Recognize(xs, 0, 1)
		// Brute force: compact iff the number of 1->0 circular
		// transitions is <= 1.
		trans := 0
		for i := 0; i < n; i++ {
			if xs[i] == 1 && xs[(i+1)%n] == 0 {
				trans++
			}
		}
		return ok == (trans <= 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryCompact pins the Table 5 binary setting semantics: l
// consecutive switches get the second setting starting at s, circularly.
func TestBinaryCompact(t *testing.T) {
	got := BinaryCompact[byte](4, 3, 2, 'p', 'x')
	want := []byte("xppx")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BinaryCompact(4,3,2) = %q, want %q", got, want)
	}
}

// TestTrinaryCompact pins the trinary setting semantics of Section 4.
func TestTrinaryCompact(t *testing.T) {
	// h=8, s=2: 3 b's, then 2 c's, rest a.
	got := TrinaryCompact[byte](8, 2, 3, 2, 'a', 'b', 'c')
	want := []byte("aabbbcca")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TrinaryCompact = %q, want %q", got, want)
	}
	// Wrap-around.
	got = TrinaryCompact[byte](6, 4, 3, 2, 'a', 'b', 'c')
	want = []byte("bccabb")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TrinaryCompact wrap = %q, want %q", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("TrinaryCompact accepted l1+l2 > h")
		}
	}()
	TrinaryCompact(4, 0, 3, 2, 0, 1, 2)
}

// TestRotate checks Rotate shifts a compact sequence's start.
func TestRotate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		s := rng.Intn(n)
		l := rng.Intn(n + 1)
		k := rng.Intn(3*n) - n
		got := Rotate(Compact(n, s, l, 0, 1), k)
		want := Compact(n, ((s+k)%n+n)%n, l, 0, 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Rotate(Compact(%d,%d,%d), %d) = %v, want %v", n, s, l, k, got, want)
		}
	}
	if Rotate([]int(nil), 3) != nil {
		t.Error("Rotate(nil) != nil")
	}
}

// TestCountOf checks the counting helper.
func TestCountOf(t *testing.T) {
	if CountOf([]int{1, 2, 1, 1}, 1) != 3 || CountOf([]int{}, 1) != 0 {
		t.Error("CountOf wrong")
	}
}

// TestCompactPanics checks range validation.
func TestCompactPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Compact(0, 0, 0, 0, 1) },
		func() { Compact(4, 4, 0, 0, 1) },
		func() { Compact(4, -1, 0, 0, 1) },
		func() { Compact(4, 0, 5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
