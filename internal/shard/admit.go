package shard

// Batched admission. Every state-touching operation is a pooled task
// enqueued onto the owning shard's bounded queue; the shard's worker
// drains tasks in batches of up to Config.BatchMax and executes them
// against the shard's manager. The fast path — queue has room, task
// pooled — allocates nothing; only the overflow path arms a timer.

import (
	"time"

	"brsmn/internal/groupd"
)

// opKind selects the manager call a task performs. An explicit enum
// (rather than a closure) keeps the admission path allocation-free.
type opKind uint8

const (
	opCreate opKind = iota
	opJoin
	opLeave
	opDelete
	opPlan
)

// task is one admitted operation: request fields in, result fields out,
// completion signaled on the reused one-slot done channel.
type task struct {
	op      opKind
	id      string
	dest    int
	source  int
	members []int

	info groupd.GroupInfo
	up   groupd.Update
	plan groupd.PlanInfo
	err  error

	enq  time.Time // stamped at enqueue when the wait histogram is live
	done chan struct{}
}

func (s *Set) getTask() *task { return s.tasks.Get().(*task) }

func (s *Set) putTask(t *task) {
	// Drop references so the pool doesn't retain request or plan data.
	t.id = ""
	t.members = nil
	t.info = groupd.GroupInfo{}
	t.up = groupd.Update{}
	t.plan = groupd.PlanInfo{}
	t.err = nil
	s.tasks.Put(t)
}

// admit enqueues t on the shard and waits for its completion. A full
// queue exerts backpressure for at most wait, then sheds. The caller
// holds the Set's placement read lock, which guarantees the queue is
// not concurrently closed.
func (sh *Shard) admit(t *task, wait time.Duration) error {
	if sh.waitHist != nil {
		t.enq = time.Now()
	}
	select {
	case sh.queue <- t:
	default:
		// Queue full: backpressure window, then shed. The timer
		// allocation is confined to this slow path.
		timer := time.NewTimer(wait)
		select {
		case sh.queue <- t:
			timer.Stop()
		case <-timer.C:
			sh.shed.Add(1)
			return ErrOverloaded
		}
	}
	<-t.done
	sh.admitted.Add(1)
	return nil
}

// admitInfo runs a task returning (GroupInfo, error) — create, delete.
func (s *Set) admitInfo(t *task) (groupd.GroupInfo, error) {
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	if s.closed {
		s.putTask(t)
		return groupd.GroupInfo{}, ErrClosed
	}
	sh, err := s.locate(t.id)
	if err != nil {
		s.putTask(t)
		return groupd.GroupInfo{}, err
	}
	if err := sh.admit(t, s.cfg.AdmitWait); err != nil {
		s.putTask(t)
		return groupd.GroupInfo{}, err
	}
	info, terr := t.info, t.err
	s.putTask(t)
	return info, terr
}

// admitUpdate runs a task returning (Update, error) — join, leave.
func (s *Set) admitUpdate(t *task) (groupd.Update, error) {
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	if s.closed {
		s.putTask(t)
		return groupd.Update{}, ErrClosed
	}
	sh, err := s.locate(t.id)
	if err != nil {
		s.putTask(t)
		return groupd.Update{}, err
	}
	if err := sh.admit(t, s.cfg.AdmitWait); err != nil {
		s.putTask(t)
		return groupd.Update{}, err
	}
	up, terr := t.up, t.err
	s.putTask(t)
	return up, terr
}

// worker is the shard's admission loop: drain a batch, execute it,
// signal completions. It exits when the queue is closed and drained.
func (sh *Shard) worker() {
	defer close(sh.workerDone)
	max := sh.batchCap
	if cap(sh.queue) < max {
		max = cap(sh.queue)
	}
	batch := make([]*task, 0, max)
	for {
		t, ok := <-sh.queue
		if !ok {
			return
		}
		batch = append(batch[:0], t)
	drain:
		for len(batch) < cap(batch) {
			select {
			case t2, ok2 := <-sh.queue:
				if !ok2 {
					break drain
				}
				batch = append(batch, t2)
			default:
				break drain
			}
		}
		for _, bt := range batch {
			if sh.waitHist != nil {
				sh.waitHist.ObserveDuration(time.Since(bt.enq))
			}
			sh.exec(bt)
			bt.done <- struct{}{}
		}
		sh.batches.Add(1)
		sh.batchHist.Observe(float64(len(batch)))
	}
}

// exec dispatches one task against the shard's manager.
func (sh *Shard) exec(t *task) {
	switch t.op {
	case opCreate:
		t.info, t.err = sh.gm.Create(t.id, t.source, t.members)
	case opJoin:
		t.up, t.err = sh.gm.Join(t.id, t.dest)
	case opLeave:
		t.up, t.err = sh.gm.Leave(t.id, t.dest)
	case opDelete:
		t.err = sh.gm.Delete(t.id)
	case opPlan:
		t.plan, t.err = sh.gm.Plan(t.id)
	}
}
