package shard

// Batched admission. Every state-touching operation is a pooled task
// enqueued onto the owning shard's bounded queue; the shard's worker
// drains tasks in batches of up to Config.BatchMax and executes them
// against the shard's manager. The fast path — queue has room, task
// pooled — allocates nothing; only the overflow path arms a timer.
//
// Locking: the placement read lock covers exactly locate + enqueue
// (including the bounded backpressure window on a full queue), never
// the wait for execution. A saturated queue therefore cannot starve
// drain/migration's write lock; writers that need a quiesced set flush
// the queues explicitly with a barrier task (see Set.flushLocked).
//
// Cancellation: a synchronous waiter whose context ends mid-flight
// abandons the task by CAS-ing its state from pending to abandoned.
// Exactly one side wins the CAS — the waiter (the worker then recycles
// the task after executing it) or the worker (the result is complete
// and the waiter consumes it normally) — so a canceled request frees
// its slot immediately and never races the pooled task's reuse.
//
// Stage stamps: every task records Unix-ns timestamps at enqueue, batch
// drain, and execution done; the waiter or ticket completion stamps the
// final delivery. The stamps feed the per-shard stage histograms
// (queue wait, execution, completion signal) and the async Ticket's
// client-visible timing record.

import (
	"context"
	"sync/atomic"
	"time"

	"brsmn/internal/backend"
	"brsmn/internal/groupd"
)

// opKind selects the manager call a task performs. An explicit enum
// (rather than a closure) keeps the admission path allocation-free.
type opKind uint8

const (
	opCreate opKind = iota
	opJoin
	opLeave
	opDelete
	opPlan
	opSetBackend
	// opBarrier is a no-op used by writers (rebalance, tests) to prove a
	// shard's queue has drained: once the barrier completes, everything
	// enqueued before it has executed.
	opBarrier
)

// String renders the op for ticket views and logs.
func (op opKind) String() string {
	switch op {
	case opCreate:
		return "create"
	case opJoin:
		return "join"
	case opLeave:
		return "leave"
	case opDelete:
		return "delete"
	case opPlan:
		return "plan"
	case opSetBackend:
		return "setBackend"
	default:
		return "barrier"
	}
}

// Task completion states, CAS-ed on task.state.
const (
	taskPending   int32 = iota // enqueued, result not yet delivered
	taskDone                   // worker completed it and signaled done
	taskAbandoned              // waiter canceled; the worker recycles it
)

// task is one admitted operation: request fields in, result fields out,
// completion signaled on the reused one-slot done channel (synchronous
// path) or published to the attached ticket (asynchronous path).
type task struct {
	op      opKind
	id      string
	dest    int
	source  int
	members []int
	// pref carries a backend preference for opCreate (when hasPref) and
	// opSetBackend.
	pref    backend.Tier
	hasPref bool

	info groupd.GroupInfo
	up   groupd.Update
	plan groupd.PlanInfo
	err  error

	// Stage stamps, Unix ns. enq is recorded unconditionally at enqueue
	// — the ticket timing record and stage histograms both need it, so
	// it must not depend on whether any histogram is registered.
	enq     int64 // enqueued onto the shard queue
	drained int64 // the worker drained the batch containing it
	execed  int64 // the manager call finished

	// state arbitrates completion between the worker and a canceling
	// waiter; see the package comment.
	state atomic.Int32

	// tk, when non-nil, marks an asynchronous task: the worker publishes
	// the result to the ticket and recycles the task itself.
	tk *Ticket

	done chan struct{}
}

func (s *Set) getTask() *task { return s.tasks.Get().(*task) }

func (s *Set) putTask(t *task) {
	// Drop references so the pool doesn't retain request or plan data.
	t.id = ""
	t.members = nil
	t.info = groupd.GroupInfo{}
	t.up = groupd.Update{}
	t.plan = groupd.PlanInfo{}
	t.err = nil
	t.pref, t.hasPref = backend.TierAuto, false
	t.tk = nil
	t.enq, t.drained, t.execed = 0, 0, 0
	t.state.Store(taskPending)
	select { // drop a stale signal, defensively — completion is CAS-arbitrated
	case <-t.done:
	default:
	}
	s.tasks.Put(t)
}

// enqueue places t on its owning shard's queue. The placement read lock
// is held for exactly locate + the send: a full queue exerts
// backpressure for at most Config.AdmitWait (unless the caller's
// context ends first), then sheds. Returns the owning shard so the
// caller can wait without the lock.
func (s *Set) enqueue(ctx context.Context, t *task) (*Shard, error) {
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	sh, err := s.locate(t.id)
	if err != nil {
		return nil, err
	}
	t.enq = time.Now().UnixNano()
	select {
	case sh.queue <- t:
	default:
		// Queue full: backpressure window, then shed. The timer
		// allocation is confined to this slow path.
		timer := time.NewTimer(s.cfg.AdmitWait)
		select {
		case sh.queue <- t:
			timer.Stop()
		case <-timer.C:
			sh.shed.Add(1)
			return nil, ErrOverloaded
		case <-ctx.Done():
			timer.Stop()
			sh.canceled.Add(1)
			return nil, ctx.Err()
		}
	}
	return sh, nil
}

// wait blocks until the enqueued task completes or ctx ends. On
// cancellation the task is abandoned to the worker (which recycles it);
// the caller must not touch t after a non-nil return. A cancellation
// that loses the race against the worker consumes the finished result
// and reports success — the operation did execute.
func (sh *Shard) wait(ctx context.Context, t *task) error {
	select {
	case <-t.done:
	case <-ctx.Done():
		if t.state.CompareAndSwap(taskPending, taskAbandoned) {
			sh.canceled.Add(1)
			return ctx.Err()
		}
		<-t.done // the worker won: the signal is (or is about to be) buffered
	}
	sh.admitted.Add(1)
	sh.signalHist.Observe(float64(time.Now().UnixNano()-t.execed) / 1e9)
	return nil
}

// admitInfo runs a task returning (GroupInfo, error) — create, delete.
func (s *Set) admitInfo(ctx context.Context, t *task) (groupd.GroupInfo, error) {
	sh, err := s.enqueue(ctx, t)
	if err != nil {
		s.putTask(t)
		return groupd.GroupInfo{}, err
	}
	if err := sh.wait(ctx, t); err != nil {
		return groupd.GroupInfo{}, err // abandoned: the worker recycles t
	}
	info, terr := t.info, t.err
	s.putTask(t)
	return info, terr
}

// admitUpdate runs a task returning (Update, error) — join, leave.
func (s *Set) admitUpdate(ctx context.Context, t *task) (groupd.Update, error) {
	sh, err := s.enqueue(ctx, t)
	if err != nil {
		s.putTask(t)
		return groupd.Update{}, err
	}
	if err := sh.wait(ctx, t); err != nil {
		return groupd.Update{}, err
	}
	up, terr := t.up, t.err
	s.putTask(t)
	return up, terr
}

// admitPlan runs a plan task — the steady route path.
func (s *Set) admitPlan(ctx context.Context, t *task) (groupd.PlanInfo, error) {
	sh, err := s.enqueue(ctx, t)
	if err != nil {
		s.putTask(t)
		return groupd.PlanInfo{}, err
	}
	if err := sh.wait(ctx, t); err != nil {
		return groupd.PlanInfo{}, err
	}
	p, terr := t.plan, t.err
	s.putTask(t)
	return p, terr
}

// flushLocked quiesces every shard's queue. The caller holds the
// placement write lock, so no new admission can start; a barrier task
// enqueued behind the backlog completes only after everything ahead of
// it has executed. No-op before the workers start (recovery-time
// rebalances run single-threaded with empty queues).
func (s *Set) flushLocked() {
	if !s.workersStarted {
		return
	}
	for _, sh := range s.shards {
		t := s.getTask()
		t.op = opBarrier
		t.enq = time.Now().UnixNano()
		sh.queue <- t
		<-t.done
		s.putTask(t)
	}
}

// worker is the shard's admission loop: drain a batch, execute it,
// signal completions. It exits when the queue is closed and drained.
func (sh *Shard) worker() {
	defer close(sh.workerDone)
	max := sh.batchCap
	if cap(sh.queue) < max {
		max = cap(sh.queue)
	}
	batch := make([]*task, 0, max)
	for {
		t, ok := <-sh.queue
		if !ok {
			return
		}
		batch = append(batch[:0], t)
	drain:
		for len(batch) < cap(batch) {
			select {
			case t2, ok2 := <-sh.queue:
				if !ok2 {
					break drain
				}
				batch = append(batch, t2)
			default:
				break drain
			}
		}
		drainNs := time.Now().UnixNano()
		for _, bt := range batch {
			bt.drained = drainNs
			if bt.op == opBarrier {
				bt.execed = drainNs
				sh.finish(bt)
				continue
			}
			sh.waitHist.Observe(float64(drainNs-bt.enq) / 1e9)
			t0 := time.Now()
			sh.exec(bt)
			bt.execed = time.Now().UnixNano()
			sh.execHist.Observe(float64(bt.execed-t0.UnixNano()) / 1e9)
			sh.finish(bt)
		}
		sh.batches.Add(1)
		sh.batchHist.Observe(float64(len(batch)))
	}
}

// finish delivers one executed task: publish to its ticket (async),
// signal the waiter (sync), or — when a canceled waiter abandoned it —
// recycle it. Exactly one of the three happens.
func (sh *Shard) finish(t *task) {
	if tk := t.tk; tk != nil {
		tk.complete(t)
		sh.admitted.Add(1)
		sh.signalHist.Observe(float64(tk.done-t.execed) / 1e9)
		sh.set.putTask(t)
		return
	}
	if t.state.CompareAndSwap(taskPending, taskDone) {
		t.done <- struct{}{}
		return
	}
	// The waiter canceled and abandoned the task; the worker owns it.
	sh.set.putTask(t)
}

// exec dispatches one task against the shard's manager.
func (sh *Shard) exec(t *task) {
	switch t.op {
	case opCreate:
		if t.hasPref {
			t.info, t.err = sh.gm.CreateWithBackend(t.id, t.source, t.members, t.pref)
		} else {
			t.info, t.err = sh.gm.Create(t.id, t.source, t.members)
		}
	case opJoin:
		t.up, t.err = sh.gm.Join(t.id, t.dest)
	case opLeave:
		t.up, t.err = sh.gm.Leave(t.id, t.dest)
	case opDelete:
		t.err = sh.gm.Delete(t.id)
	case opPlan:
		t.plan, t.err = sh.gm.Plan(t.id)
	case opSetBackend:
		t.info, t.err = sh.gm.SetBackend(t.id, t.pref)
	}
}
