package shard

// Tests for the asynchronous (ticketed) admission path: lifecycle and
// result parity with the sync path, registry bounds, and the large
// -race soak that holds ≥10k tickets in flight with concurrent
// cancellations and a drain.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"brsmn/internal/groupd"
	"brsmn/internal/store"
)

func TestSubmitLifecycle(t *testing.T) {
	s := newTestSet(t, Config{Shards: 2})

	tk, err := s.SubmitCreate("", 0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tk.ID() == "" || tk.Op() != "create" || tk.Group() == "" {
		t.Fatalf("create ticket = %q op %q group %q", tk.ID(), tk.Op(), tk.Group())
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := tk.Err(); err != nil {
		t.Fatal(err)
	}
	info, ok := tk.Info()
	if !ok || info.ID != tk.Group() {
		t.Fatalf("create result = %+v ok=%v", info, ok)
	}
	id := info.ID

	// The registry serves the completed ticket back by ID.
	got, err := s.Ticket(tk.ID())
	if err != nil || got != tk {
		t.Fatalf("Ticket(%q) = %v, %v", tk.ID(), got, err)
	}
	if _, err := s.Ticket("t999999"); !errors.Is(err, ErrNoSuchTicket) {
		t.Fatalf("unknown ticket: %v", err)
	}

	jk, err := s.SubmitJoin(id, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := jk.Wait(context.Background()); err != nil || jk.Err() != nil {
		t.Fatalf("join: wait %v err %v", err, jk.Err())
	}
	if up, ok := jk.Update(); !ok || up.Gen != 2 {
		t.Fatalf("join result = %+v ok=%v", up, ok)
	}

	// Stage stamps are monotonic once done.
	st := jk.Stamps()
	if !(st.Submitted > 0 && st.Submitted <= st.Enqueued && st.Enqueued <= st.Drained &&
		st.Drained <= st.Execed && st.Execed <= st.Done) {
		t.Fatalf("stamps not monotonic: %+v", st)
	}

	// A failing op surfaces its error through the ticket.
	bad, err := s.SubmitPlan("no-such-group")
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(bad.Err(), groupd.ErrNotFound) {
		t.Fatalf("plan on missing group: %v", bad.Err())
	}

	dk, err := s.SubmitDelete(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := dk.Wait(context.Background()); err != nil || dk.Err() != nil {
		t.Fatalf("delete: wait %v err %v", err, dk.Err())
	}
	if _, err := s.Get(id); !errors.Is(err, groupd.ErrNotFound) {
		t.Fatalf("group survived async delete: %v", err)
	}
}

// TestAsyncMatchesSyncPlan pins result parity: the plan blob a ticket
// carries is byte-identical to what the synchronous path returns.
func TestAsyncMatchesSyncPlan(t *testing.T) {
	s := newTestSet(t, Config{Shards: 2})
	if _, err := s.Create("par", 0, []int{1, 5, 9}); err != nil {
		t.Fatal(err)
	}
	sp, err := s.Plan("par")
	if err != nil {
		t.Fatal(err)
	}
	tk, err := s.SubmitPlan("par")
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(context.Background()); err != nil || tk.Err() != nil {
		t.Fatalf("wait %v err %v", err, tk.Err())
	}
	ap, ok := tk.Plan()
	if !ok {
		t.Fatal("ticket carries no plan")
	}
	if !bytes.Equal(sp.Blob, ap.Blob) || sp.Gen != ap.Gen {
		t.Fatalf("async plan differs: sync gen %d (%d bytes), async gen %d (%d bytes)",
			sp.Gen, len(sp.Blob), ap.Gen, len(ap.Blob))
	}
}

// TestTicketRegistryBounds exercises the registry directly: node-scoped
// IDs, the open-ticket limit, cap-pressure eviction of completed
// tickets, and TTL pruning.
func TestTicketRegistryBounds(t *testing.T) {
	r := newTicketRegistry(2, time.Hour, "n1")
	a, err := r.add(opPlan, "g1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != "t1@n1" {
		t.Fatalf("node-scoped ID = %q", a.ID())
	}
	b, err := r.add(opPlan, "g2", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both slots open: a third submission sheds.
	if _, err := r.add(opPlan, "g3", 0); !errors.Is(err, ErrTicketLimit) {
		t.Fatalf("over-cap add: %v", err)
	}
	// Completing one frees it for cap-pressure eviction.
	a.complete(&task{op: opPlan})
	if _, err := r.add(opPlan, "g4", 0); err != nil {
		t.Fatalf("add after completion: %v", err)
	}
	if _, err := r.get(a.id); !errors.Is(err, ErrNoSuchTicket) {
		t.Fatal("completed ticket survived cap-pressure eviction")
	}
	st := r.stats()
	if st.Open != 2 || st.Evicted != 1 || st.Submitted != 3 {
		t.Fatalf("stats = %+v", st)
	}

	// A shed submission must free its open slot.
	r.remove(b)
	if st := r.stats(); st.Open != 1 {
		t.Fatalf("open after remove = %d, want 1", st.Open)
	}

	// TTL pruning: with a zero TTL every completed ticket is already
	// expired the next time the registry is touched.
	r2 := newTicketRegistry(8, 0, "")
	d, err := r2.add(opPlan, "g", 0)
	if err != nil {
		t.Fatal(err)
	}
	d.complete(&task{op: opPlan})
	if _, err := r2.add(opPlan, "g2", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.get(d.id); !errors.Is(err, ErrNoSuchTicket) {
		t.Fatal("expired ticket survived TTL prune")
	}
}

// gateStore wraps a Store so the test can stall every mutation append:
// while the gate is held, shard workers block inside exec and admitted
// work piles up as open tickets.
type gateStore struct {
	store.Store
	gate *sync.RWMutex
}

func (g *gateStore) Append(rec store.Record) (uint64, error) {
	g.gate.RLock()
	defer g.gate.RUnlock()
	return g.Store.Append(rec)
}

// TestAsyncSoak is the -race soak from the acceptance bar: more than
// ten thousand tickets in flight at once, synchronous cancellations
// racing the workers, and a quarantine/reinstate drain while the
// backlog executes. Afterwards every counter must reconcile exactly and
// no goroutine may leak.
func TestAsyncSoak(t *testing.T) {
	const (
		seedCount  = 64
		nTickets   = 12000
		submitters = 16
		nCancel    = 200
	)
	var gate sync.RWMutex
	baseline := runtime.NumGoroutine()

	s, err := New(Config{
		Shards:     2,
		QueueDepth: 16384,
		BatchMax:   64,
		TicketCap:  32768,
		TicketTTL:  time.Hour,
		AdmitWait:  10 * time.Millisecond,
		Group:      groupd.Config{N: 64},
		NewStore: func(int) (store.Store, error) {
			return &gateStore{Store: store.NewMem(), gate: &gate}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ids := make([]string, seedCount)
	for i := range ids {
		ids[i] = fmt.Sprintf("soak-g%02d", i)
		if _, err := s.Create(ids[i], 0, []int{1 + i%4}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Plan(ids[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Hold the WAL gate: the first mutating task per shard blocks inside
	// exec, everything behind it queues, and open tickets accumulate.
	gate.Lock()

	tickets := make([]*Ticket, nTickets)
	var submitErrs atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nTickets; i += submitters {
				tk, err := s.SubmitJoin(ids[i%seedCount], 2+i%62)
				if err != nil {
					submitErrs.Add(1)
					continue
				}
				tickets[i] = tk
			}
		}(w)
	}
	wg.Wait()
	if n := submitErrs.Load(); n != 0 {
		t.Fatalf("%d submissions failed below the shed threshold", n)
	}
	if open := s.TicketStats().Open; open < 10000 {
		t.Fatalf("only %d tickets in flight, want >= 10000", open)
	}

	// Synchronous joins with short deadlines, stuck behind the gated
	// backlog: each must come back with the context error, having
	// abandoned its pooled task to the worker.
	var syncCanceled, syncOK atomic.Uint64
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nCancel; i += submitters {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
				_, err := s.JoinContext(ctx, ids[i%seedCount], 2+i%62)
				cancel()
				switch {
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					syncCanceled.Add(1)
				case errors.Is(err, ErrOverloaded) || errors.Is(err, ErrClosed):
					t.Errorf("sync join shed below threshold: %v", err)
				default:
					syncOK.Add(1) // executed (possibly a membership error)
				}
			}
		}(w)
	}
	wg.Wait()

	// Release the backlog; drain one shard mid-flight.
	gate.Unlock()
	quarDone := make(chan error, 1)
	go func() {
		if err := s.Quarantine(1); err != nil {
			quarDone <- err
			return
		}
		quarDone <- s.Reinstate(1)
	}()

	waitCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var ticketDone uint64
	for i, tk := range tickets {
		if err := tk.Wait(waitCtx); err != nil {
			t.Fatalf("ticket %d (%s) never completed: %v", i, tk.ID(), err)
		}
		ticketDone++
		st := tk.Stamps()
		if !(st.Submitted > 0 && st.Submitted <= st.Enqueued && st.Enqueued <= st.Drained &&
			st.Drained <= st.Execed && st.Execed <= st.Done) {
			t.Fatalf("ticket %d stamps not monotonic: %+v", i, st)
		}
	}
	if err := <-quarDone; err != nil {
		t.Fatalf("drain during soak: %v", err)
	}

	// Exact reconciliation: every admitted operation is a seed create or
	// warm plan, a completed ticket, or a sync join that executed; every
	// context-error return was counted canceled; nothing shed.
	st := s.Stats()
	var admitted, canceled, shed uint64
	for _, ss := range st.PerShard {
		admitted += ss.Admitted
		canceled += ss.Canceled
		shed += ss.Shed
	}
	wantAdmitted := uint64(2*seedCount) + ticketDone + syncOK.Load()
	if admitted != wantAdmitted {
		t.Fatalf("admitted = %d, want %d (tickets %d, syncOK %d, syncCanceled %d)",
			admitted, wantAdmitted, ticketDone, syncOK.Load(), syncCanceled.Load())
	}
	if canceled != syncCanceled.Load() {
		t.Fatalf("canceled counter = %d, want %d", canceled, syncCanceled.Load())
	}
	if shed != 0 {
		t.Fatalf("shed %d operations below threshold", shed)
	}
	if ts := s.TicketStats(); ts.Open != 0 || ts.PeakOpen < 10000 {
		t.Fatalf("ticket stats after drain = %+v", ts)
	}

	// Every group is still coherent after the churn: plans compute.
	for _, id := range ids {
		if _, err := s.Plan(id); err != nil {
			t.Fatalf("plan %q after soak: %v", id, err)
		}
	}

	// No leaked goroutines once the set closes.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSubmitClosed checks the async surface after Close.
func TestSubmitClosed(t *testing.T) {
	s := newTestSet(t, Config{Shards: 2})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitPlan("g"); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}
