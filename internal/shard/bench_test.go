package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"brsmn/internal/groupd"
	"brsmn/internal/rbn"
)

// benchSet builds a K-shard set at size n with `groups` groups of n/2
// members each — real multicast structure at every level, spread over
// the placement ring.
func benchSet(tb testing.TB, shards, n, groups int) (*Set, []string) {
	tb.Helper()
	s, err := New(Config{
		Shards:     shards,
		QueueDepth: 1024,
		BatchMax:   64,
		Group:      groupd.Config{N: n, Engine: rbn.Sequential},
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	members := make([]int, 0, n/2)
	for d := 1; d < n; d += 2 {
		members = append(members, d)
	}
	ids := make([]string, 0, groups)
	for g := 0; g < groups; g++ {
		id := fmt.Sprintf("bench-%d", g)
		if _, err := s.Create(id, 0, members); err != nil {
			tb.Fatal(err)
		}
		ids = append(ids, id)
	}
	return s, ids
}

// BenchmarkAdmitPlanWarm measures the admitted steady route path — a
// warm plan through placement, the admission queue, and a worker —
// against the shard counts the daemon ships with.
func BenchmarkAdmitPlanWarm(b *testing.B) {
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			s, ids := benchSet(b, k, 1024, 16)
			for _, id := range ids {
				if _, err := s.Plan(id); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := s.Plan(ids[i%len(ids)]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// coldRoutesPerSec drives cold replans (join/leave bumps the generation
// before every plan, forcing the full route+flatten+encode pipeline)
// from `drivers` goroutines and returns completed plans per second.
func coldRoutesPerSec(tb testing.TB, s *Set, ids []string, drivers, plansPerDriver int) float64 {
	tb.Helper()
	var planned atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < drivers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < plansPerDriver; i++ {
				id := ids[(w+i*drivers)%len(ids)]
				if _, err := s.Join(id, 0); err != nil {
					tb.Error(err)
					return
				}
				if _, err := s.Leave(id, 0); err != nil {
					tb.Error(err)
					return
				}
				p, err := s.Plan(id)
				if err != nil {
					tb.Error(err)
					return
				}
				if p.Cached {
					tb.Error("cold plan hit the cache")
					return
				}
				planned.Add(1)
			}
		}(w)
	}
	wg.Wait()
	return float64(planned.Load()) / time.Since(start).Seconds()
}

// TestShardScalingThroughput pins the tentpole acceptance bar: with 4
// shards on >= 8 cores, the serving layer sustains at least 3x the
// single-shard cold routes/sec at n = 1024. Each driver's stream is
// disjoint (one group per driver), so throughput is bounded by worker
// parallelism — exactly what sharding buys.
func TestShardScalingThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 8 {
		t.Skipf("need >= 8 cores for the 4-shard scaling bar, have %d", runtime.NumCPU())
	}
	const n = 1024
	const drivers = 8
	const plansPerDriver = 12

	// Group IDs chosen so the 4-shard ring spreads the 8 driver streams
	// over every shard (placementInvariant tests cover correctness; here
	// we only need non-degenerate spread, which 16 candidates give).
	s1, ids := benchSet(t, 1, n, 16)
	warm := func(s *Set) {
		for _, id := range ids {
			if _, err := s.Plan(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm(s1)
	single := coldRoutesPerSec(t, s1, ids, drivers, plansPerDriver)
	s1.Close()

	s4, _ := benchSet(t, 4, n, 16)
	warm(s4)
	sharded := coldRoutesPerSec(t, s4, ids, drivers, plansPerDriver)

	t.Logf("cold routes/sec: 1 shard = %.1f, 4 shards = %.1f (%.2fx)", single, sharded, sharded/single)
	if sharded < 3*single {
		t.Fatalf("4-shard throughput %.1f routes/sec < 3x single-shard %.1f", sharded, single)
	}
}
