package shard

// Metrics for the sharded serving layer. Per-shard series carry a
// shard="k" label (the family name and HELP/TYPE header stay shared),
// aggregate series are unlabeled:
//
//	brsmn_shard_admitted_total{shard}         counter    operations admitted and executed
//	brsmn_shard_shed_total{shard}             counter    operations shed after the backpressure window
//	brsmn_shard_canceled_total{shard}         counter    admissions abandoned by canceled clients
//	brsmn_shard_batches_total{shard}          counter    worker batches drained
//	brsmn_shard_queue_len{shard}              gauge      admission-queue occupancy
//	brsmn_shard_queue_capacity{shard}         gauge      admission-queue bound
//	brsmn_shard_groups{shard}                 gauge      groups placed on the shard
//	brsmn_shard_live{shard}                   gauge      1 while on the placement ring
//	brsmn_shard_admission_wait_seconds{shard} histogram  queue wait, enqueue to batch drain
//	brsmn_shard_exec_seconds{shard}           histogram  execution, drain to manager-call return
//	brsmn_shard_signal_seconds{shard}         histogram  delivery, exec done to waiter/ticket signaled
//	brsmn_shard_batch_size{shard}             histogram  tasks per drained batch
//	brsmn_shards                              gauge      configured shard count K
//	brsmn_shards_live                         gauge      shards currently on the ring
//	brsmn_shard_migrations_total              counter    groups moved by rebalances
//	brsmn_shard_quarantines_total             counter    quarantines (manual + automatic)
//	brsmn_tickets_open                        gauge      async tickets awaiting execution
//	brsmn_tickets_retained                    gauge      completed tickets held for polling
//	brsmn_tickets_submitted_total             counter    async submissions accepted
//	brsmn_tickets_evicted_total               counter    completed tickets evicted (TTL or cap)
//
// The three stage histograms decompose end-to-end admission latency, so
// "p99 queue wait vs plan time" is answerable straight from /metrics.

import "brsmn/internal/obs"

// batchBuckets spans 1..QueueDepth-ish batch sizes: 1 2 4 ... 512.
func batchBuckets() []float64 { return obs.ExpBuckets(1, 2, 10) }

// registerMetrics wires the Set's series into reg. Called from New
// before the workers start; each per-shard manager and fault policy
// registers its own labeled series separately.
func (s *Set) registerMetrics(reg *obs.Registry) {
	for i := range s.shards {
		sh := s.shards[i]
		lbl := func(name string) string { return obs.WithLabel(name, shardLabel(sh.id)) }
		sh.waitHist = reg.Histogram(lbl("brsmn_shard_admission_wait_seconds"),
			"Admission-queue wait, enqueue to batch drain.", obs.SecondsBuckets())
		sh.execHist = reg.Histogram(lbl("brsmn_shard_exec_seconds"),
			"Execution stage, batch drain to manager-call return.", obs.SecondsBuckets())
		sh.signalHist = reg.Histogram(lbl("brsmn_shard_signal_seconds"),
			"Delivery stage, execution done to waiter or ticket signaled.", obs.SecondsBuckets())
		sh.batchHist = reg.Histogram(lbl("brsmn_shard_batch_size"),
			"Tasks executed per drained admission batch.", batchBuckets())
		reg.CounterFunc(lbl("brsmn_shard_admitted_total"), "Operations admitted and executed.",
			func() float64 { return float64(sh.admitted.Load()) })
		reg.CounterFunc(lbl("brsmn_shard_shed_total"),
			"Operations shed with 429 after the backpressure window.",
			func() float64 { return float64(sh.shed.Load()) })
		reg.CounterFunc(lbl("brsmn_shard_canceled_total"),
			"Admissions abandoned because the client's context ended.",
			func() float64 { return float64(sh.canceled.Load()) })
		reg.CounterFunc(lbl("brsmn_shard_batches_total"), "Worker batches drained.",
			func() float64 { return float64(sh.batches.Load()) })
		reg.GaugeFunc(lbl("brsmn_shard_queue_len"), "Admission-queue occupancy.",
			func() float64 { return float64(len(sh.queue)) })
		reg.GaugeFunc(lbl("brsmn_shard_queue_capacity"), "Admission-queue bound.",
			func() float64 { return float64(cap(sh.queue)) })
		reg.GaugeFunc(lbl("brsmn_shard_groups"), "Groups placed on the shard.",
			func() float64 { return float64(sh.gm.Count()) })
		reg.GaugeFunc(lbl("brsmn_shard_live"), "1 while the shard is on the placement ring.",
			func() float64 {
				if sh.dead.Load() {
					return 0
				}
				return 1
			})
	}
	reg.GaugeFunc("brsmn_shards", "Configured serving-shard count.",
		func() float64 { return float64(len(s.shards)) })
	reg.GaugeFunc("brsmn_shards_live", "Shards currently on the placement ring.",
		func() float64 {
			live := 0
			for _, sh := range s.shards {
				if !sh.dead.Load() {
					live++
				}
			}
			return float64(live)
		})
	reg.CounterFunc("brsmn_shard_migrations_total", "Groups moved by rebalances.",
		func() float64 { return float64(s.migrations.Load()) })
	reg.CounterFunc("brsmn_shard_quarantines_total", "Shard quarantines, manual and automatic.",
		func() float64 { return float64(s.quarantines.Load()) })
	reg.GaugeFunc("brsmn_tickets_open", "Async tickets awaiting execution.",
		func() float64 { return float64(s.tickets.stats().Open) })
	reg.GaugeFunc("brsmn_tickets_retained", "Completed tickets held for polling.",
		func() float64 { return float64(s.tickets.stats().Retained) })
	reg.CounterFunc("brsmn_tickets_submitted_total", "Async submissions accepted.",
		func() float64 { return float64(s.tickets.stats().Submitted) })
	reg.CounterFunc("brsmn_tickets_evicted_total", "Completed tickets evicted by TTL or cap pressure.",
		func() float64 { return float64(s.tickets.stats().Evicted) })
}
