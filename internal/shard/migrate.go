package shard

// Set-level migration primitives — the serving-layer half of cluster
// drain. The cluster tier (internal/cluster) moves groups between
// *processes* with the same snapshot vocabulary the durable store uses;
// these methods fan the per-group export/install/gen-guarded-delete
// calls onto the owning local shard. They bypass the admission queues:
// migrations are rare, placement-read-locked operations, exactly like
// the quarantine rebalance path.

import (
	"brsmn/internal/store"
)

// PlaceHash is the placement hash shared by the shard ring and the
// cluster node ring: allocation-free FNV-1a with a splitmix64-style
// avalanche (see placeHash for why the avalanche is load-bearing).
// Exported so both rings place a group ID identically and deliberately
// unseeded so placement survives restarts.
func PlaceHash(s string) uint64 { return placeHash(s) }

// Export freezes every group on every shard into snapshot form with its
// warm current-generation plan when cached (nil otherwise); the slices
// are index-aligned. The placement read lock is held so a concurrent
// rebalance never splits a group across the two slices.
func (s *Set) Export() ([]store.GroupState, []*store.PlanState) {
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	var groups []store.GroupState
	var plans []*store.PlanState
	for _, sh := range s.shards {
		g, p := sh.gm.Export()
		groups = append(groups, g...)
		plans = append(plans, p...)
	}
	return groups, plans
}

// ExportGroup freezes one group from its owning shard.
func (s *Set) ExportGroup(id string) (store.GroupState, *store.PlanState, error) {
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	if s.closed {
		return store.GroupState{}, nil, ErrClosed
	}
	sh, err := s.locate(id)
	if err != nil {
		return store.GroupState{}, nil, err
	}
	return sh.gm.ExportGroup(id)
}

// Install registers a migrated group (generation and warm plan intact)
// on its local placement shard. Higher generation wins on collision —
// see groupd.Manager.Install.
func (s *Set) Install(g store.GroupState, plan *store.PlanState) error {
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	sh, err := s.locate(g.ID)
	if err != nil {
		return err
	}
	return sh.gm.Install(g, plan)
}

// DeleteIfGen unregisters the group from its owning shard only if its
// generation still equals gen (groupd.ErrGenMismatch otherwise).
func (s *Set) DeleteIfGen(id string, gen uint64) error {
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	sh, err := s.locate(id)
	if err != nil {
		return err
	}
	if err := sh.gm.DeleteIfGen(id, gen); err != nil {
		return err
	}
	s.migrations.Add(1)
	return nil
}
