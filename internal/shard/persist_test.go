package shard

import (
	"errors"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"brsmn/internal/groupd"
	"brsmn/internal/rbn"
	"brsmn/internal/store"
)

// memStores is a reusable per-shard MemStore factory, so two Sets can
// model a restart over the same "disk".
type memStores struct {
	stores map[int]*store.MemStore
}

func newMemStores() *memStores { return &memStores{stores: map[int]*store.MemStore{}} }

func (m *memStores) factory(i int) (store.Store, error) {
	if st, ok := m.stores[i]; ok {
		return st, nil
	}
	st := store.NewMem()
	m.stores[i] = st
	return st, nil
}

// newDurableSet builds a Set over the factory without cleanup-time
// Close (restart tests close explicitly, and MemStores must survive).
func newDurableSet(t *testing.T, cfg Config) *Set {
	t.Helper()
	if cfg.Group.N == 0 {
		cfg.Group.N = 16
	}
	if cfg.Group.Engine.Workers == 0 {
		cfg.Group.Engine = rbn.Sequential
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSetRestartRecovery(t *testing.T) {
	ms := newMemStores()
	s1 := newDurableSet(t, Config{Shards: 4, NewStore: ms.factory})
	ids := seedGroups(t, s1, 16)
	if _, err := s1.Join(ids[3], 15); err != nil {
		t.Fatal(err)
	}
	if err := s1.Delete(ids[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Create("", 2, []int{4}); err != nil { // auto-ID g1
		t.Fatal(err)
	}
	want := s1.List()
	// No Close: MemStore restart modeling replays the raw logs.

	s2 := newDurableSet(t, Config{Shards: 4, NewStore: ms.factory})
	if got := s2.List(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered set state:\n got %+v\nwant %+v", got, want)
	}
	// Each group recovered onto the shard that owns its hash point.
	for _, info := range want {
		if _, err := s2.Get(info.ID); err != nil {
			t.Fatalf("get %q after recovery: %v", info.ID, err)
		}
	}
	// Auto-IDs continue past recovered ones.
	created, err := s2.Create("", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if created.ID != "g2" {
		t.Fatalf("post-recovery auto ID = %q, want g2", created.ID)
	}
	var replayed int
	for _, rs := range s2.Recovery() {
		replayed += rs.Records
	}
	if replayed == 0 {
		t.Fatal("recovery replayed no records")
	}
}

// TestSetReshardRecovery boots the persisted state on a larger shard
// count: recovered groups migrate to their new ring owners and nothing
// is lost. (Shrinking is not supported this way — a removed shard's
// store is never opened, so its groups must be drained first; see
// DESIGN.md.)
func TestSetReshardRecovery(t *testing.T) {
	ms := newMemStores()
	s1 := newDurableSet(t, Config{Shards: 2, NewStore: ms.factory})
	ids := seedGroups(t, s1, 12)
	want := s1.List()

	s2 := newDurableSet(t, Config{Shards: 4, NewStore: ms.factory})
	got := s2.List()
	if len(got) != len(want) {
		t.Fatalf("reshard recovered %d groups, want %d", len(got), len(want))
	}
	for i := range want {
		// Migration re-creates moved groups at gen 1; identity fields
		// must survive exactly.
		if got[i].ID != want[i].ID || got[i].Source != want[i].Source ||
			!reflect.DeepEqual(got[i].Members, want[i].Members) {
			t.Fatalf("group %d after reshard:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	for _, id := range ids {
		if _, err := s2.Plan(id); err != nil {
			t.Fatalf("plan %q after reshard: %v", id, err)
		}
	}
}

// TestSetGracefulRestartOnDisk is the full lifecycle on FileStores:
// Close writes final per-shard snapshots, and a new Set recovers with
// zero log replay and a warm plan cache.
func TestSetGracefulRestartOnDisk(t *testing.T) {
	dir := t.TempDir()
	factory := func(i int) (store.Store, error) {
		return store.OpenFile(filepath.Join(dir, "shard-"+strconv.Itoa(i)), store.FileConfig{})
	}
	s1 := newDurableSet(t, Config{Shards: 3, NewStore: factory})
	ids := seedGroups(t, s1, 9)
	for _, id := range ids {
		if _, err := s1.Plan(id); err != nil {
			t.Fatal(err)
		}
	}
	want := s1.List()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newDurableSet(t, Config{Shards: 3, NewStore: factory})
	defer s2.Close()
	if got := s2.List(); !reflect.DeepEqual(got, want) {
		t.Fatalf("state after graceful restart:\n got %+v\nwant %+v", got, want)
	}
	for _, rs := range s2.Recovery() {
		if rs.Records != 0 {
			t.Fatalf("graceful restart replayed records: %+v", rs)
		}
		if !rs.SnapshotLoaded {
			t.Fatalf("shard recovered without snapshot: %+v", rs)
		}
	}
	for _, id := range ids {
		p, err := s2.Plan(id)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Cached {
			t.Fatalf("plan %q after graceful restart missed the recovered cache", id)
		}
	}
}

func TestSetSnapshotAll(t *testing.T) {
	ms := newMemStores()
	s := newDurableSet(t, Config{Shards: 2, NewStore: ms.factory})
	defer s.Close()
	seedGroups(t, s, 6)
	infos, err := s.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("SnapshotAll returned %d infos", len(infos))
	}
	total := 0
	for i, info := range infos {
		if info.Shard != i {
			t.Fatalf("info %d has shard %d", i, info.Shard)
		}
		if info.Bytes <= 0 {
			t.Fatalf("info %d: %+v", i, info)
		}
		total += info.Groups
	}
	if total != 6 {
		t.Fatalf("snapshots cover %d groups, want 6", total)
	}
	for i, st := range ms.stores {
		if !st.HasSnapshot() {
			t.Fatalf("shard %d store has no snapshot", i)
		}
	}
}

func TestSetSnapshotAllWithoutStore(t *testing.T) {
	s := newTestSet(t, Config{Shards: 2})
	if _, err := s.SnapshotAll(); !errors.Is(err, groupd.ErrNoStore) {
		t.Fatalf("SnapshotAll without store: %v", err)
	}
}
