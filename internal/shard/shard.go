// Package shard is the multi-fabric serving layer: it partitions the
// long-lived multicast groups of internal/groupd across K independent
// planner shards, each a full vertical slice of the single-fabric
// service — its own core.Network (and with it a private PlannerPool),
// plan cache, epoch scheduler, and fault policy. One epoch loop over
// one fabric serializes every group through the same planner; K shards
// admit traffic onto K switching planes in parallel, which is where the
// serving layer's throughput comes from (the same batched-admission
// idea the wormhole multi-lane MIN and optical multicast service
// literature applies at the fabric level).
//
// Three cooperating mechanisms:
//
//   - placement: groups map to shards by consistent hashing on the
//     group ID (ring of virtual nodes, first live shard clockwise).
//     Hashing the ID — not the source port — keeps a group's home
//     stable across membership churn and spreads the many groups a hot
//     source owns over every plane; see DESIGN.md.
//   - batched admission: every state-touching operation (create, join,
//     leave, delete, plan) enqueues onto the owning shard's bounded
//     admission queue and is executed by that shard's worker in drained
//     batches. A full queue exerts backpressure for Config.AdmitWait,
//     then sheds the operation as ErrOverloaded — the HTTP layer's 429.
//     The steady-state admission path allocates nothing: tasks are
//     pooled, the reply channel is reused, and placement is an inline
//     FNV hash plus a binary search.
//   - rebalance: quarantining a shard (manually, or automatically when
//     its fault policy reports unhealthy) removes it from the ring and
//     migrates its groups to their new ring successors; reinstating it
//     migrates them back. Placement and migration serialize on one
//     RWMutex whose read side is the enqueue step of admission; a
//     rebalance takes the write side (no new enqueues) and then flushes
//     every queue with a barrier task, so it observes a quiesced set.
//
// Admission comes in two shapes: the synchronous methods (Create, Join,
// ..., and their ...Context variants, which honor cancellation) block
// until the batch executes, while the Submit* methods return a Ticket
// immediately and publish the result — with a per-stage Unix-ns timing
// record — when the worker gets to it. See ticket.go.
//
// A Set is safe for concurrent use by the HTTP handlers of
// internal/api, its shard workers, and the managers' epoch goroutines.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"brsmn/internal/backend"
	"brsmn/internal/groupd"
	"brsmn/internal/obs"
	"brsmn/internal/store"
)

// Sentinel errors the API layer maps to HTTP statuses.
var (
	// ErrOverloaded is admission-queue overflow after the backpressure
	// window — the 429 surface.
	ErrOverloaded = errors.New("shard: admission queue full")
	// ErrClosed reports a Set that has been Closed.
	ErrClosed = errors.New("shard: set closed")
	// ErrNoLiveShard means every shard is quarantined.
	ErrNoLiveShard = errors.New("shard: no live shard")
	// ErrNoSuchShard reports an out-of-range shard ID.
	ErrNoSuchShard = errors.New("shard: no such shard")
)

// HealthReporter is the optional fault-policy facet the Set watches to
// quarantine a shard automatically: a policy that also reports overall
// fabric health (implemented by faultd.Monitor). A policy without it is
// never auto-quarantined.
type HealthReporter interface {
	Healthy() bool
}

// Config parameterizes a Set. Group is the per-shard manager template;
// its Policy and MetricsLabel fields are overridden per shard.
type Config struct {
	// Shards is the serving-shard count K (default 1).
	Shards int
	// QueueDepth bounds each shard's admission queue (default 256).
	QueueDepth int
	// BatchMax caps the operations a shard worker drains per batch
	// (default 32).
	BatchMax int
	// AdmitWait is how long admission exerts backpressure on a full
	// queue before shedding with ErrOverloaded (default 20ms).
	AdmitWait time.Duration
	// Replicas is the virtual-node count per shard on the placement
	// ring (default 64).
	Replicas int
	// Group is the per-shard groupd.Config template: N, Engine, cache
	// size, epoch period/threshold, workers, metrics registry, tracer.
	Group groupd.Config
	// NewPolicy, when non-nil, builds shard i's fault policy. Policies
	// that also implement HealthReporter arm automatic quarantine.
	NewPolicy func(shard int) groupd.FaultPolicy
	// OnQuarantine, when non-nil, is called (on its own goroutine)
	// after an automatic fault-triggered quarantine completes.
	OnQuarantine func(shard int)
	// Metrics, when non-nil, receives the admission and placement
	// series of metrics.go, labeled per shard.
	Metrics *obs.Registry
	// NewStore, when non-nil, builds shard i's durable store: each
	// shard gets its own WAL + snapshot stream, its manager recovers
	// from it at construction, and the Set rebalances recovered groups
	// whose placement moved (e.g. after a shard-count change).
	NewStore func(shard int) (store.Store, error)
	// SnapshotEvery, when > 0 and NewStore is set, snapshots every
	// shard periodically on a background goroutine (stopped by Close).
	SnapshotEvery time.Duration
	// FaultSpecs, when non-nil, reports the fault specs armed on shard
	// i's fabric, carried by that shard's snapshots (see
	// groupd.Config.FaultSpecs).
	FaultSpecs func(shard int) []string
	// TicketCap bounds the tickets the registry tracks at once — open
	// plus retained-completed (default 65536). Submissions beyond the
	// cap shed with ErrTicketLimit once no completed ticket is old
	// enough to evict.
	TicketCap int
	// TicketTTL is how long a completed ticket stays pollable before
	// eviction (default 2m).
	TicketTTL time.Duration
	// TicketNode, when non-empty, suffixes ticket IDs as "t<seq>@<node>"
	// so a cluster tier can route polls back to the issuing node.
	TicketNode string
}

func (c *Config) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.AdmitWait <= 0 {
		c.AdmitWait = 20 * time.Millisecond
	}
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.TicketCap <= 0 {
		c.TicketCap = 65536
	}
	if c.TicketTTL <= 0 {
		c.TicketTTL = 2 * time.Minute
	}
}

// Shard is one serving plane: a full groupd.Manager (planner pool, plan
// cache, epoch loop) plus its admission queue and worker.
type Shard struct {
	id    int
	set   *Set
	gm    *groupd.Manager
	watch *watchedPolicy // nil without a policy
	dead  atomic.Bool

	queue      chan *task
	batchCap   int
	workerDone chan struct{}

	admitted atomic.Uint64
	shed     atomic.Uint64
	canceled atomic.Uint64
	batches  atomic.Uint64

	// Admission stage histograms; nil without a registry (Observe on a
	// nil *obs.Histogram is a no-op).
	waitHist   *obs.Histogram
	batchHist  *obs.Histogram
	execHist   *obs.Histogram
	signalHist *obs.Histogram
}

// Set is the sharded serving layer. Construct with New, release with
// Close. It implements the same group surface as groupd.Manager, so the
// HTTP layer serves either behind one interface.
type Set struct {
	cfg    Config
	shards []*Shard
	ring   []ringPoint

	// placeMu serializes placement against rebalance: admission holds
	// the read side only across locate + enqueue (never the wait for
	// execution), so a writer — quarantine, reinstate, close — blocks
	// new enqueues and then quiesces the queues with flushLocked before
	// moving groups.
	placeMu sync.RWMutex
	closed  bool

	// workersStarted gates flushLocked: recovery-time rebalances run
	// before the shard workers exist, with empty queues.
	workersStarted bool

	tickets *ticketRegistry

	nextID      atomic.Uint64
	migrations  atomic.Uint64
	quarantines atomic.Uint64

	// Periodic snapshot goroutine; nil channels when not running.
	snapQuit chan struct{}
	snapDone chan struct{}

	tasks sync.Pool
}

// ringPoint is one virtual node: a hash position owned by a shard.
type ringPoint struct {
	h     uint64
	shard int
}

// New builds K shards and their placement ring. Each shard's manager
// runs its own epoch loop per the Group template.
func New(cfg Config) (*Set, error) {
	cfg.applyDefaults()
	s := &Set{cfg: cfg}
	s.tasks.New = func() any { return &task{done: make(chan struct{}, 1)} }
	s.tickets = newTicketRegistry(cfg.TicketCap, cfg.TicketTTL, cfg.TicketNode)
	for i := 0; i < cfg.Shards; i++ {
		i := i
		gcfg := cfg.Group
		gcfg.MetricsLabel = shardLabel(i)
		if gcfg.Metrics == nil {
			gcfg.Metrics = cfg.Metrics
		}
		var watch *watchedPolicy
		if cfg.NewPolicy != nil {
			if p := cfg.NewPolicy(i); p != nil {
				watch = &watchedPolicy{FaultPolicy: p, set: s, shard: i}
				gcfg.Policy = watch
			}
		}
		var st store.Store
		if cfg.NewStore != nil {
			var err error
			st, err = cfg.NewStore(i)
			if err != nil {
				for _, sh := range s.shards {
					sh.gm.Close()
				}
				return nil, fmt.Errorf("shard %d: open store: %w", i, err)
			}
			gcfg.Store = st
			if cfg.FaultSpecs != nil {
				gcfg.FaultSpecs = func() []string { return cfg.FaultSpecs(i) }
			}
		}
		gm, err := groupd.NewManager(gcfg)
		if err != nil {
			if st != nil {
				st.Close() // the manager never took ownership
			}
			for _, sh := range s.shards {
				sh.gm.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		sh := &Shard{
			id:         i,
			set:        s,
			gm:         gm,
			watch:      watch,
			queue:      make(chan *task, cfg.QueueDepth),
			batchCap:   cfg.BatchMax,
			workerDone: make(chan struct{}),
		}
		s.shards = append(s.shards, sh)
	}
	s.ring = buildRing(cfg.Shards, cfg.Replicas)
	if cfg.Metrics != nil {
		s.registerMetrics(cfg.Metrics)
	}
	if cfg.NewStore != nil {
		if err := s.reconcileRecovered(); err != nil {
			for _, sh := range s.shards {
				sh.gm.Close()
			}
			return nil, err
		}
	}
	s.workersStarted = true
	for _, sh := range s.shards {
		go sh.worker()
	}
	if cfg.NewStore != nil && cfg.SnapshotEvery > 0 {
		s.snapQuit = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(cfg.SnapshotEvery)
	}
	return s, nil
}

// reconcileRecovered runs after every shard's manager has restored from
// its store: it advances the Set-level auto-ID counter past recovered
// "g<k>" IDs and migrates any group whose placement no longer matches
// its recovered shard (shard count or replica changes move ring
// ownership; the migration itself is durable, since it appends to the
// gaining and losing shards' logs).
func (s *Set) reconcileRecovered() error {
	s.placeMu.Lock()
	defer s.placeMu.Unlock()
	recovered := 0
	for _, sh := range s.shards {
		for _, info := range sh.gm.List() {
			recovered++
			rest, ok := strings.CutPrefix(info.ID, "g")
			if !ok {
				continue
			}
			if k, err := strconv.ParseUint(rest, 10, 64); err == nil && k > s.nextID.Load() {
				s.nextID.Store(k)
			}
		}
	}
	if recovered == 0 {
		return nil
	}
	if err := s.rebalanceLocked(); err != nil {
		return fmt.Errorf("shard: rebalancing recovered groups: %w", err)
	}
	return nil
}

// snapshotLoop snapshots every shard on the configured cadence.
func (s *Set) snapshotLoop(every time.Duration) {
	defer close(s.snapDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.snapQuit:
			return
		case <-t.C:
			_, _ = s.SnapshotAll() // per-shard errors surface via metrics and on-demand snapshots
		}
	}
}

// SnapshotAll snapshots every shard's manager to its store, returning
// one SnapshotInfo per shard. ErrNoStore without a store factory.
func (s *Set) SnapshotAll() ([]store.SnapshotInfo, error) {
	if s.cfg.NewStore == nil {
		return nil, groupd.ErrNoStore
	}
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make([]store.SnapshotInfo, 0, len(s.shards))
	for _, sh := range s.shards {
		info, err := sh.gm.SnapshotNow()
		if err != nil {
			return out, fmt.Errorf("shard %d: snapshot: %w", sh.id, err)
		}
		info.Shard = sh.id
		out = append(out, info)
	}
	return out, nil
}

// Recovery returns what each shard's manager reconstructed at boot,
// indexed by shard ID.
func (s *Set) Recovery() []groupd.RecoveryStats {
	out := make([]groupd.RecoveryStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.gm.Recovery()
	}
	return out
}

// shardLabel renders shard i's metric label pair.
func shardLabel(i int) string { return fmt.Sprintf(`shard="%d"`, i) }

// buildRing hashes Replicas virtual nodes per shard onto the ring.
func buildRing(shards, replicas int) []ringPoint {
	ring := make([]ringPoint, 0, shards*replicas)
	for i := 0; i < shards; i++ {
		for r := 0; r < replicas; r++ {
			ring = append(ring, ringPoint{h: placeHash(fmt.Sprintf("shard-%d-%d", i, r)), shard: i})
		}
	}
	sort.Slice(ring, func(a, b int) bool { return ring[a].h < ring[b].h })
	return ring
}

// placeHash is the placement hash: an inline allocation-free FNV-1a
// over the group ID, pushed through a splitmix64-style finalizer. Raw
// FNV-1a of sequential strings ("g1", "g2", "shard-0-1", "shard-0-2")
// yields near-sequential values — vnodes of one shard would cluster in
// a single band of the ring — so the avalanche step is load-bearing.
// Deliberately not seeded: placement must be identical across restarts
// so operators can reason about which shard owns a group.
func placeHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// locate returns the live shard owning id: the first non-quarantined
// shard clockwise from the ID's hash point. Callers hold placeMu (read
// or write side). The binary search is hand-rolled so the admission
// path stays allocation-free.
func (s *Set) locate(id string) (*Shard, error) {
	h := placeHash(id)
	lo, hi := 0, len(s.ring)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ring[mid].h < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for k := 0; k < len(s.ring); k++ {
		p := s.ring[(lo+k)%len(s.ring)]
		sh := s.shards[p.shard]
		if !sh.dead.Load() {
			return sh, nil
		}
	}
	return nil, ErrNoLiveShard
}

// N returns the per-shard network size.
func (s *Set) N() int { return s.cfg.Group.N }

// Shards returns the configured shard count K.
func (s *Set) Shards() int { return len(s.shards) }

// Manager exposes shard i's group manager — the introspection surface
// for tests and per-shard tooling.
func (s *Set) Manager(i int) (*groupd.Manager, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchShard, i)
	}
	return s.shards[i].gm, nil
}

// Close stops every shard: new admissions fail with ErrClosed, the
// periodic snapshot loop stops, queued work drains, workers exit, and
// managers close — with a durable store, each manager's Close writes a
// final snapshot and closes the store, so a graceful shutdown leaves
// nothing to replay. Idempotent; returns the first shard close error.
func (s *Set) Close() error {
	s.placeMu.Lock()
	if s.closed {
		s.placeMu.Unlock()
		return nil
	}
	s.closed = true
	s.placeMu.Unlock()
	if s.snapQuit != nil {
		close(s.snapQuit)
		<-s.snapDone
	}
	// No enqueue is in flight (sends happen under the read lock with
	// closed checked) and none can start, so closing the queues is
	// race-free. Workers drain the remaining buffered tasks — signaling
	// their waiters and completing their tickets — before managers
	// close, so the final snapshots see every admitted mutation.
	for _, sh := range s.shards {
		close(sh.queue)
	}
	var firstErr error
	for _, sh := range s.shards {
		<-sh.workerDone
		if err := sh.gm.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: close: %w", sh.id, err)
		}
	}
	return firstErr
}

// --- group surface (mirrors groupd.Manager) ---

// Create registers a group on its placement shard. An empty ID is
// auto-assigned before placement, since placement hashes the ID.
func (s *Set) Create(id string, source int, members []int) (groupd.GroupInfo, error) {
	return s.CreateContext(context.Background(), id, source, members)
}

// CreateContext is Create honoring cancellation: if ctx ends before the
// operation is delivered, the slot is freed (or the executed result is
// discarded) and ctx.Err() returned. Same for the other ...Context
// variants.
func (s *Set) CreateContext(ctx context.Context, id string, source int, members []int) (groupd.GroupInfo, error) {
	if id == "" {
		id = fmt.Sprintf("g%d", s.nextID.Add(1))
	}
	t := s.getTask()
	t.op = opCreate
	t.id = id
	t.source = source
	t.members = members
	return s.admitInfo(ctx, t)
}

// CreateWithBackend registers a group with an explicit backend
// preference (see groupd.Manager.CreateWithBackend).
func (s *Set) CreateWithBackend(id string, source int, members []int, pref backend.Tier) (groupd.GroupInfo, error) {
	return s.CreateWithBackendContext(context.Background(), id, source, members, pref)
}

// CreateWithBackendContext is CreateWithBackend with cancellation.
func (s *Set) CreateWithBackendContext(ctx context.Context, id string, source int, members []int, pref backend.Tier) (groupd.GroupInfo, error) {
	if id == "" {
		id = fmt.Sprintf("g%d", s.nextID.Add(1))
	}
	t := s.getTask()
	t.op = opCreate
	t.id = id
	t.source = source
	t.members = members
	t.pref = pref
	t.hasPref = true
	return s.admitInfo(ctx, t)
}

// SetBackend changes the group's backend preference on its owning
// shard (see groupd.Manager.SetBackend).
func (s *Set) SetBackend(id string, pref backend.Tier) (groupd.GroupInfo, error) {
	return s.SetBackendContext(context.Background(), id, pref)
}

// SetBackendContext is SetBackend with cancellation.
func (s *Set) SetBackendContext(ctx context.Context, id string, pref backend.Tier) (groupd.GroupInfo, error) {
	t := s.getTask()
	t.op = opSetBackend
	t.id = id
	t.pref = pref
	t.hasPref = true
	return s.admitInfo(ctx, t)
}

// Join admits output d to the group on its owning shard.
func (s *Set) Join(id string, d int) (groupd.Update, error) {
	return s.JoinContext(context.Background(), id, d)
}

// JoinContext is Join with cancellation.
func (s *Set) JoinContext(ctx context.Context, id string, d int) (groupd.Update, error) {
	t := s.getTask()
	t.op = opJoin
	t.id = id
	t.dest = d
	return s.admitUpdate(ctx, t)
}

// Leave removes output d from the group; same contract as Join.
func (s *Set) Leave(id string, d int) (groupd.Update, error) {
	return s.LeaveContext(context.Background(), id, d)
}

// LeaveContext is Leave with cancellation.
func (s *Set) LeaveContext(ctx context.Context, id string, d int) (groupd.Update, error) {
	t := s.getTask()
	t.op = opLeave
	t.id = id
	t.dest = d
	return s.admitUpdate(ctx, t)
}

// Delete unregisters the group from its owning shard.
func (s *Set) Delete(id string) error {
	return s.DeleteContext(context.Background(), id)
}

// DeleteContext is Delete with cancellation.
func (s *Set) DeleteContext(ctx context.Context, id string) error {
	t := s.getTask()
	t.op = opDelete
	t.id = id
	_, err := s.admitInfo(ctx, t)
	return err
}

// Plan returns the group's column program from its owning shard — the
// steady route path. Warm requests are plan-cache hits on the shard and
// allocate nothing end to end, admission included.
func (s *Set) Plan(id string) (groupd.PlanInfo, error) {
	return s.PlanContext(context.Background(), id)
}

// PlanContext is Plan with cancellation.
func (s *Set) PlanContext(ctx context.Context, id string) (groupd.PlanInfo, error) {
	t := s.getTask()
	t.op = opPlan
	t.id = id
	return s.admitPlan(ctx, t)
}

// Backends returns the per-tier backends (metadata: name, patch
// capability, cost rows). Every shard plans on identically configured
// backends, so any live manager's table serves.
func (s *Set) Backends() map[backend.Tier]backend.Backend {
	return s.shards[0].gm.Backends()
}

// SelectorConfig returns the effective auto-tiering thresholds.
func (s *Set) SelectorConfig() backend.SelectorConfig {
	return s.shards[0].gm.SelectorConfig()
}

// Get reads the group's state from its owning shard (no admission —
// reads don't contend with the planning queue).
func (s *Set) Get(id string) (groupd.GroupInfo, error) {
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	if s.closed {
		return groupd.GroupInfo{}, ErrClosed
	}
	sh, err := s.locate(id)
	if err != nil {
		return groupd.GroupInfo{}, err
	}
	return sh.gm.Get(id)
}

// List returns every group across all shards, sorted by ID.
func (s *Set) List() []groupd.GroupInfo {
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	var out []groupd.GroupInfo
	for _, sh := range s.shards {
		out = append(out, sh.gm.List()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Count returns the total registered groups across all shards.
func (s *Set) Count() int {
	c := 0
	for _, sh := range s.shards {
		c += sh.gm.Count()
	}
	return c
}

// Epoch returns the largest completed epoch count across shards.
func (s *Set) Epoch() int64 {
	var e int64
	for _, sh := range s.shards {
		if v := sh.gm.Epoch(); v > e {
			e = v
		}
	}
	return e
}

// Pending sums the membership churn accumulated across shards.
func (s *Set) Pending() int64 {
	var p int64
	for _, sh := range s.shards {
		p += sh.gm.Pending()
	}
	return p
}

// CacheStats sums the per-shard plan-cache counters.
func (s *Set) CacheStats() groupd.CacheStats {
	var agg groupd.CacheStats
	for _, sh := range s.shards {
		cs := sh.gm.CacheStats()
		agg.Hits += cs.Hits
		agg.Misses += cs.Misses
		agg.Evictions += cs.Evictions
		agg.Invalidations += cs.Invalidations
		agg.Size += cs.Size
		agg.Capacity += cs.Capacity
	}
	return agg
}

// RunEpoch reroutes every live shard concurrently and merges the
// reports: rounds concatenate (they ran on independent fabrics), the
// scalar tallies sum, and Epoch is the largest per-shard epoch number.
func (s *Set) RunEpoch() (*groupd.EpochReport, error) {
	s.placeMu.RLock()
	live := make([]*Shard, 0, len(s.shards))
	for _, sh := range s.shards {
		if !sh.dead.Load() {
			live = append(live, sh)
		}
	}
	s.placeMu.RUnlock()
	if len(live) == 0 {
		return nil, ErrNoLiveShard
	}
	start := time.Now()
	reps := make([]*groupd.EpochReport, len(live))
	errs := make([]error, len(live))
	var wg sync.WaitGroup
	for i, sh := range live {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			reps[i], errs[i] = sh.gm.RunEpoch()
		}(i, sh)
	}
	wg.Wait()
	merged := &groupd.EpochReport{When: start}
	for i, rep := range reps {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard %d: %w", live[i].id, errs[i])
		}
		if rep.Epoch > merged.Epoch {
			merged.Epoch = rep.Epoch
		}
		merged.Groups += rep.Groups
		merged.Fanout += rep.Fanout
		merged.Rounds = append(merged.Rounds, rep.Rounds...)
		merged.Quarantined += rep.Quarantined
		merged.DegradedRounds += rep.DegradedRounds
	}
	merged.Duration = time.Since(start)
	merged.Cache = s.CacheStats()
	return merged, nil
}

// LastEpoch merges the shards' most recent epoch reports, or nil before
// any shard has completed one.
func (s *Set) LastEpoch() *groupd.EpochReport {
	var merged *groupd.EpochReport
	for _, sh := range s.shards {
		rep := sh.gm.LastEpoch()
		if rep == nil {
			continue
		}
		if merged == nil {
			merged = &groupd.EpochReport{When: rep.When}
		}
		if rep.Epoch > merged.Epoch {
			merged.Epoch = rep.Epoch
		}
		if rep.Duration > merged.Duration {
			merged.Duration = rep.Duration
		}
		merged.Groups += rep.Groups
		merged.Fanout += rep.Fanout
		merged.Rounds = append(merged.Rounds, rep.Rounds...)
		merged.Quarantined += rep.Quarantined
		merged.DegradedRounds += rep.DegradedRounds
		if rep.Err != "" {
			merged.Err = rep.Err
		}
	}
	if merged != nil {
		merged.Cache = s.CacheStats()
	}
	return merged
}

// --- quarantine and rebalance ---

// Quarantine removes shard i from the placement ring and migrates its
// groups to their new ring successors. Refused when it would leave no
// live shard.
func (s *Set) Quarantine(i int) error {
	s.placeMu.Lock()
	defer s.placeMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("%w: %d", ErrNoSuchShard, i)
	}
	if s.shards[i].dead.Load() {
		return fmt.Errorf("shard: %d already quarantined", i)
	}
	lives := 0
	for _, sh := range s.shards {
		if !sh.dead.Load() {
			lives++
		}
	}
	if lives <= 1 {
		return fmt.Errorf("shard: refusing to quarantine %d: %v", i, ErrNoLiveShard)
	}
	s.shards[i].dead.Store(true)
	s.quarantines.Add(1)
	return s.rebalanceLocked()
}

// Reinstate returns shard i to the ring and migrates back the groups
// whose hash points it owns. The shard's fault-watch trigger re-arms.
func (s *Set) Reinstate(i int) error {
	s.placeMu.Lock()
	defer s.placeMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("%w: %d", ErrNoSuchShard, i)
	}
	if !s.shards[i].dead.Load() {
		return fmt.Errorf("shard: %d not quarantined", i)
	}
	s.shards[i].dead.Store(false)
	if w := s.shards[i].watch; w != nil {
		w.fired.Store(false)
	}
	return s.rebalanceLocked()
}

// rebalanceLocked moves every group whose placement no longer matches
// its current shard. Migration bypasses admission — the caller holds
// the write lock (no new enqueues), and the barrier flush below drains
// everything already queued, so no operation is in flight anywhere.
func (s *Set) rebalanceLocked() error {
	s.flushLocked()
	var firstErr error
	for _, from := range s.shards {
		for _, info := range from.gm.List() {
			to, err := s.locate(info.ID)
			if err != nil {
				return err // no live shard; nothing can be placed
			}
			if to == from {
				continue
			}
			pref, perr := backend.ParseTier(info.BackendPref)
			if perr != nil {
				pref = backend.TierAuto
			}
			if _, err := to.gm.CreateWithBackend(info.ID, info.Source, info.Members, pref); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("shard: migrating %q to shard %d: %w", info.ID, to.id, err)
				}
				continue // keep the group on its old shard rather than lose it
			}
			if err := from.gm.Delete(info.ID); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("shard: deleting migrated %q from shard %d: %w", info.ID, from.id, err)
			}
			s.migrations.Add(1)
		}
	}
	return firstErr
}

// quarantineDetected is the automatic path, run on its own goroutine
// from a shard's epoch loop when its fault policy turns unhealthy.
func (s *Set) quarantineDetected(i int) {
	if err := s.Quarantine(i); err != nil {
		return // already quarantined, closing, or last live shard
	}
	if s.cfg.OnQuarantine != nil {
		s.cfg.OnQuarantine(i)
	}
}

// watchedPolicy wraps a shard's fault policy to watch for detection:
// after every epoch, an unhealthy report triggers (once, until the
// shard is reinstated) an asynchronous quarantine-and-rebalance.
type watchedPolicy struct {
	groupd.FaultPolicy
	set   *Set
	shard int
	fired atomic.Bool
}

func (w *watchedPolicy) AfterEpoch(epoch int64) {
	w.FaultPolicy.AfterEpoch(epoch)
	if w.fired.Load() {
		return
	}
	hr, ok := w.FaultPolicy.(HealthReporter)
	if !ok || hr.Healthy() {
		return
	}
	if w.fired.CompareAndSwap(false, true) {
		// Off the epoch goroutine: quarantine takes the placement write
		// lock and must not stall the shard's epoch loop.
		go w.set.quarantineDetected(w.shard)
	}
}

// --- stats ---

// ShardStats is one shard's externally visible state.
type ShardStats struct {
	ID         int               `json:"id"`
	Live       bool              `json:"live"`
	Groups     int               `json:"groups"`
	Epoch      int64             `json:"epoch"`
	Pending    int64             `json:"pending"`
	QueueLen   int               `json:"queueLen"`
	QueueDepth int               `json:"queueDepth"`
	Admitted   uint64            `json:"admitted"`
	Shed       uint64            `json:"shed"`
	Canceled   uint64            `json:"canceled"`
	Batches    uint64            `json:"batches"`
	Cache      groupd.CacheStats `json:"cache"`
}

// SetStats is the whole serving layer's snapshot.
type SetStats struct {
	Shards      int          `json:"shards"`
	Live        int          `json:"live"`
	Groups      int          `json:"groups"`
	Migrations  uint64       `json:"migrations"`
	Quarantines uint64       `json:"quarantines"`
	PerShard    []ShardStats `json:"perShard"`
}

// Stats snapshots every shard.
func (s *Set) Stats() SetStats {
	st := SetStats{
		Shards:      len(s.shards),
		Migrations:  s.migrations.Load(),
		Quarantines: s.quarantines.Load(),
	}
	for _, sh := range s.shards {
		ss := ShardStats{
			ID:         sh.id,
			Live:       !sh.dead.Load(),
			Groups:     sh.gm.Count(),
			Epoch:      sh.gm.Epoch(),
			Pending:    sh.gm.Pending(),
			QueueLen:   len(sh.queue),
			QueueDepth: cap(sh.queue),
			Admitted:   sh.admitted.Load(),
			Shed:       sh.shed.Load(),
			Canceled:   sh.canceled.Load(),
			Batches:    sh.batches.Load(),
			Cache:      sh.gm.CacheStats(),
		}
		if ss.Live {
			st.Live++
		}
		st.Groups += ss.Groups
		st.PerShard = append(st.PerShard, ss)
	}
	return st
}
