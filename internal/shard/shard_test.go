package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"brsmn/internal/groupd"
	"brsmn/internal/mcast"
	"brsmn/internal/obs"
	"brsmn/internal/rbn"
)

func newTestSet(t *testing.T, cfg Config) *Set {
	t.Helper()
	if cfg.Group.N == 0 {
		cfg.Group.N = 16
	}
	if cfg.Group.Engine.Workers == 0 {
		cfg.Group.Engine = rbn.Sequential
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// seedGroups creates count groups "t0".."t<count-1>", each rooted at
// source 0 with a couple of members.
func seedGroups(t *testing.T, s *Set, count int) []string {
	t.Helper()
	ids := make([]string, 0, count)
	for i := 0; i < count; i++ {
		id := fmt.Sprintf("t%d", i)
		if _, err := s.Create(id, 0, []int{1 + i%4, 8 + i%7}); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestLifecycleAcrossShards(t *testing.T) {
	s := newTestSet(t, Config{Shards: 4})
	ids := seedGroups(t, s, 16)

	if got := s.Count(); got != 16 {
		t.Fatalf("Count = %d, want 16", got)
	}
	list := s.List()
	if len(list) != 16 {
		t.Fatalf("List returned %d groups", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatalf("List not sorted: %q before %q", list[i-1].ID, list[i].ID)
		}
	}

	up, err := s.Join(ids[3], 15)
	if err != nil {
		t.Fatal(err)
	}
	if up.Gen != 2 {
		t.Fatalf("join gen = %d, want 2", up.Gen)
	}
	if _, err := s.Leave(ids[3], 15); err != nil {
		t.Fatal(err)
	}

	p, err := s.Plan(ids[3])
	if err != nil {
		t.Fatal(err)
	}
	if p.Cached || len(p.Blob) == 0 {
		t.Fatalf("first plan = %+v, want uncached with blob", p)
	}
	p, err = s.Plan(ids[3])
	if err != nil {
		t.Fatal(err)
	}
	if !p.Cached {
		t.Fatal("second plan missed the cache")
	}

	if err := s.Delete(ids[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ids[3]); !errors.Is(err, groupd.ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	if got := s.Count(); got != 15 {
		t.Fatalf("Count after delete = %d, want 15", got)
	}
}

func TestCreateAutoID(t *testing.T) {
	s := newTestSet(t, Config{Shards: 2})
	a, err := s.Create("", 0, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Create("", 0, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == "" || b.ID == "" || a.ID == b.ID {
		t.Fatalf("auto IDs = %q, %q", a.ID, b.ID)
	}
}

// placementInvariant checks the core placement property: every group
// lives on exactly one shard, that shard is live, and it is the shard
// the ring locates for the group's ID.
func placementInvariant(t *testing.T, s *Set, wantGroups int) {
	t.Helper()
	seen := map[string]int{}
	for _, sh := range s.shards {
		for _, info := range sh.gm.List() {
			if prev, dup := seen[info.ID]; dup {
				t.Fatalf("group %q on shards %d and %d", info.ID, prev, sh.id)
			}
			seen[info.ID] = sh.id
			if sh.dead.Load() {
				t.Fatalf("group %q on quarantined shard %d", info.ID, sh.id)
			}
			s.placeMu.RLock()
			want, err := s.locate(info.ID)
			s.placeMu.RUnlock()
			if err != nil {
				t.Fatalf("locate %q: %v", info.ID, err)
			}
			if want != sh {
				t.Fatalf("group %q on shard %d, ring owner is %d", info.ID, sh.id, want.id)
			}
		}
	}
	if len(seen) != wantGroups {
		t.Fatalf("placement covers %d groups, want %d", len(seen), wantGroups)
	}
}

func TestPlacementProperty(t *testing.T) {
	s := newTestSet(t, Config{Shards: 4})
	seedGroups(t, s, 64)
	placementInvariant(t, s, 64)

	// Placement should actually spread: with 64 groups over 4 shards and
	// 64 virtual nodes each, no shard should be empty.
	for _, sh := range s.shards {
		if sh.gm.Count() == 0 {
			t.Fatalf("shard %d owns no groups", sh.id)
		}
	}

	if err := s.Quarantine(1); err != nil {
		t.Fatal(err)
	}
	if s.shards[1].gm.Count() != 0 {
		t.Fatalf("quarantined shard still owns %d groups", s.shards[1].gm.Count())
	}
	placementInvariant(t, s, 64)
	if s.Stats().Migrations == 0 {
		t.Fatal("quarantine migrated nothing")
	}

	// A second quarantine drains another shard while the first stays out.
	if err := s.Quarantine(3); err != nil {
		t.Fatal(err)
	}
	placementInvariant(t, s, 64)

	if err := s.Reinstate(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Reinstate(3); err != nil {
		t.Fatal(err)
	}
	placementInvariant(t, s, 64)
	if s.shards[1].gm.Count() == 0 {
		t.Fatal("reinstated shard got no groups back")
	}

	// Group operations still work end to end after the churn.
	for _, info := range s.List() {
		if _, err := s.Plan(info.ID); err != nil {
			t.Fatalf("plan %q after rebalance: %v", info.ID, err)
		}
	}
}

func TestQuarantineGuards(t *testing.T) {
	s := newTestSet(t, Config{Shards: 2})
	if err := s.Quarantine(7); !errors.Is(err, ErrNoSuchShard) {
		t.Fatalf("out-of-range quarantine: %v", err)
	}
	if err := s.Reinstate(0); err == nil {
		t.Fatal("reinstating a live shard succeeded")
	}
	if err := s.Quarantine(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine(0); err == nil {
		t.Fatal("double quarantine succeeded")
	}
	if err := s.Quarantine(1); err == nil {
		t.Fatal("quarantining the last live shard succeeded")
	}
	if err := s.Reinstate(0); err != nil {
		t.Fatal(err)
	}
}

func TestClosedSet(t *testing.T) {
	s := newTestSet(t, Config{Shards: 2})
	seedGroups(t, s, 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := s.Create("late", 0, []int{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
	if _, err := s.Plan("t0"); !errors.Is(err, ErrClosed) {
		t.Fatalf("plan after close: %v", err)
	}
	if err := s.Quarantine(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("quarantine after close: %v", err)
	}
}

// TestShedOverload drives the backpressure path directly: a full queue
// with no worker sheds after AdmitWait with ErrOverloaded, and a
// context canceled inside the backpressure window frees the caller
// immediately, counting as canceled rather than shed.
func TestShedOverload(t *testing.T) {
	s := &Set{cfg: Config{AdmitWait: 5 * time.Millisecond}}
	s.tasks.New = func() any { return &task{done: make(chan struct{}, 1)} }
	sh := &Shard{id: 0, set: s, queue: make(chan *task, 1)}
	s.shards = []*Shard{sh}
	s.ring = buildRing(1, 4)
	sh.queue <- &task{} // fill; no worker drains it

	tk := s.getTask()
	tk.id = "x"
	if _, err := s.enqueue(context.Background(), tk); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("enqueue on full queue: %v", err)
	}
	if sh.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", sh.shed.Load())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.enqueue(ctx, tk); !errors.Is(err, context.Canceled) {
		t.Fatalf("enqueue with canceled ctx: %v", err)
	}
	if sh.canceled.Load() != 1 {
		t.Fatalf("canceled counter = %d, want 1", sh.canceled.Load())
	}
	if sh.shed.Load() != 1 {
		t.Fatalf("shed counter after cancel = %d, want 1", sh.shed.Load())
	}
}

// TestAdmissionSoak hammers a 4-shard set from many goroutines (run
// under -race in CI): below the shedding threshold no operation may be
// dropped, and every shard's shed counter must stay zero.
func TestAdmissionSoak(t *testing.T) {
	s := newTestSet(t, Config{Shards: 4, QueueDepth: 128, BatchMax: 16, AdmitWait: time.Second})
	ids := seedGroups(t, s, 32)
	for _, id := range ids { // warm every plan
		if _, err := s.Plan(id); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	const opsPer = 150
	var wg sync.WaitGroup
	var failures atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				id := ids[(w*opsPer+i)%len(ids)]
				switch i % 4 {
				case 0, 1:
					// Join/leave races between workers legitimately fail
					// with membership errors; only admission failures
					// (shed, closed) count against the soak.
					var err error
					if i%4 == 0 {
						_, err = s.Join(id, 15)
					} else {
						_, err = s.Leave(id, 15)
					}
					if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrClosed) || errors.Is(err, ErrNoLiveShard) {
						failures.Add(1)
					}
				default:
					if _, err := s.Plan(id); err != nil {
						failures.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d operations failed under soak", n)
	}
	st := s.Stats()
	var admitted uint64
	for _, ss := range st.PerShard {
		admitted += ss.Admitted
		if ss.Shed != 0 {
			t.Fatalf("shard %d shed %d operations below threshold", ss.ID, ss.Shed)
		}
	}
	if admitted < workers*opsPer {
		t.Fatalf("admitted %d < %d issued", admitted, workers*opsPer)
	}
}

// TestSteadyPlanAllocs pins the acceptance bar: admission adds zero
// allocations per operation on the warm (cache-hit) plan path.
func TestSteadyPlanAllocs(t *testing.T) {
	s := newTestSet(t, Config{Shards: 4, Metrics: obs.NewRegistry()})
	ids := seedGroups(t, s, 8)
	id := ids[5]
	if _, err := s.Plan(id); err != nil { // warm
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Plan(id); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady admitted plan allocates %.1f objects/op, want 0", allocs)
	}
}

// fakePolicy is a controllable FaultPolicy + HealthReporter for the
// auto-quarantine path.
type fakePolicy struct {
	healthy atomic.Bool
}

func (p *fakePolicy) FilterAssignment(a mcast.Assignment) (mcast.Assignment, []int) { return a, nil }
func (p *fakePolicy) Version() uint64                                              { return 0 }
func (p *fakePolicy) AfterEpoch(int64)                                             {}
func (p *fakePolicy) Healthy() bool                                                { return p.healthy.Load() }

func TestAutoQuarantineOnUnhealthyPolicy(t *testing.T) {
	policies := make([]*fakePolicy, 2)
	fired := make(chan int, 1)
	s := newTestSet(t, Config{
		Shards: 2,
		NewPolicy: func(i int) groupd.FaultPolicy {
			p := &fakePolicy{}
			p.healthy.Store(true)
			policies[i] = p
			return p
		},
		OnQuarantine: func(i int) { fired <- i },
	})
	seedGroups(t, s, 12)
	placementInvariant(t, s, 12)

	// Healthy epochs never trigger.
	if _, err := s.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	select {
	case i := <-fired:
		t.Fatalf("quarantine fired for shard %d while healthy", i)
	default:
	}

	policies[0].healthy.Store(false)
	if _, err := s.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	select {
	case i := <-fired:
		if i != 0 {
			t.Fatalf("quarantined shard %d, want 0", i)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("auto-quarantine never fired")
	}
	if !s.shards[0].dead.Load() {
		t.Fatal("shard 0 not marked dead")
	}
	placementInvariant(t, s, 12)

	// The trigger is one-shot: further unhealthy epochs don't re-fire,
	// and reinstating re-arms it.
	if _, err := s.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
		t.Fatal("quarantine re-fired while already quarantined")
	case <-time.After(50 * time.Millisecond):
	}
	policies[0].healthy.Store(true)
	if err := s.Reinstate(0); err != nil {
		t.Fatal(err)
	}
	placementInvariant(t, s, 12)
	if s.shards[0].watch.fired.Load() {
		t.Fatal("watch trigger not re-armed by reinstate")
	}
}

// TestShardMetrics checks that the admission series render per shard
// and the aggregates are present.
func TestShardMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestSet(t, Config{Shards: 2, Metrics: reg})
	seedGroups(t, s, 6)
	for i := 0; i < 6; i++ {
		if _, err := s.Plan(fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`brsmn_shard_admitted_total{shard="0"}`,
		`brsmn_shard_admitted_total{shard="1"}`,
		`brsmn_shard_queue_capacity{shard="0"} 256`,
		`brsmn_shard_live{shard="1"} 1`,
		"brsmn_shards 2",
		"brsmn_shards_live 2",
		"brsmn_shard_migrations_total 0",
		`brsmn_shard_batch_size_count{shard="0"}`,
		`brsmn_shard_admission_wait_seconds_count{shard="1"}`,
		// Per-shard manager series ride the same label.
		`brsmn_groups{shard="0"}`,
		`brsmn_groups{shard="1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Count(text, "# TYPE brsmn_shard_admitted_total") != 1 {
		t.Error("per-shard series split the family header")
	}

	if err := s.Quarantine(0); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text = sb.String()
	if !strings.Contains(text, `brsmn_shard_live{shard="0"} 0`) ||
		!strings.Contains(text, "brsmn_shards_live 1") ||
		!strings.Contains(text, "brsmn_shard_quarantines_total 1") {
		t.Errorf("post-quarantine metrics wrong:\n%s", text)
	}
}

// TestEpochMerging runs epochs across shards and checks the merged
// report covers every group.
func TestEpochMerging(t *testing.T) {
	s := newTestSet(t, Config{Shards: 3})
	seedGroups(t, s, 9)
	rep, err := s.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups != 9 {
		t.Fatalf("epoch covered %d groups, want 9", rep.Groups)
	}
	if rep.Epoch != 1 {
		t.Fatalf("merged epoch = %d, want 1", rep.Epoch)
	}
	last := s.LastEpoch()
	if last == nil || last.Groups != 9 {
		t.Fatalf("LastEpoch = %+v", last)
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("Epoch() = %d, want 1", got)
	}
}
