package shard

// Asynchronous admission. Submit* methods place a task on the owning
// shard's queue exactly like the synchronous path but return a Ticket
// immediately instead of blocking the caller; the shard worker
// publishes the result (and the full stage-timing record) to the
// ticket when the batch executes. Clients retrieve completion by
// polling Set.Ticket / Ticket.Wait or by selecting on Ticket.DoneCh —
// the HTTP layer builds long-poll and SSE on top of the latter.
//
// Tickets live in a bounded registry: open tickets plus completed ones
// retained for Config.TicketTTL so a client that submitted before a
// disconnect can still collect the result. When the registry is full,
// the oldest completed ticket is evicted to make room; if every slot is
// an open ticket, submission sheds with ErrTicketLimit — the async
// path's second backpressure surface besides queue-full ErrOverloaded.
//
// Memory model: the worker writes every result field and stage stamp
// before closing doneCh, and readers access them only after observing
// the close (Done/Wait/DoneCh), so no further locking is needed on the
// ticket itself.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"brsmn/internal/backend"
	"brsmn/internal/groupd"
)

// Async-admission sentinels.
var (
	// ErrTicketLimit is registry overflow — every tracked ticket is
	// still open. The API maps it to 429, like ErrOverloaded.
	ErrTicketLimit = errors.New("shard: ticket registry full")
	// ErrNoSuchTicket reports an unknown (or already evicted) ticket ID.
	ErrNoSuchTicket = errors.New("shard: no such ticket")
)

// TicketStamps is one admitted operation's stage-timing record, Unix
// nanoseconds. Zero fields mean the stage has not happened yet (only
// possible on an open ticket). Derived durations: queue wait =
// Drained-Enqueued, execution = Execed-Drained (the batch's earlier
// tasks execute within this window too), delivery = Done-Execed.
type TicketStamps struct {
	Submitted int64 `json:"submittedNs"` // ticket issued
	Enqueued  int64 `json:"enqueuedNs"`  // task placed on the shard queue
	Drained   int64 `json:"drainedNs"`   // worker drained its batch
	Execed    int64 `json:"execedNs"`    // manager call finished
	Done      int64 `json:"doneNs"`      // result published to the ticket
}

// Ticket is one asynchronous admission: identity and placement are
// fixed at submit; results and stamps become readable once Done.
type Ticket struct {
	id    string
	op    opKind
	group string
	shard int

	// Result fields, written by the worker before doneCh closes. The
	// has* booleans report which shape the op produced.
	resInfo groupd.GroupInfo
	resUp   groupd.Update
	resPlan groupd.PlanInfo
	hasInfo bool
	hasUp   bool
	hasPlan bool
	stamp   TicketStamps
	done    int64 // == stamp.Done; kept flat for the signal histogram
	err     error

	doneCh chan struct{}
	reg    *ticketRegistry
}

// complete publishes an executed task's outcome to the ticket. Called
// exactly once, by the shard worker, which then recycles the task —
// everything the client may read is copied here.
func (tk *Ticket) complete(t *task) {
	tk.stamp.Enqueued = t.enq
	tk.stamp.Drained = t.drained
	tk.stamp.Execed = t.execed
	tk.err = t.err
	switch t.op {
	case opCreate:
		tk.hasInfo = true
		tk.resInfo = t.info
	case opJoin, opLeave:
		tk.hasUp = true
		tk.resUp = t.up
	case opPlan:
		tk.hasPlan = true
		tk.resPlan = t.plan
	}
	now := time.Now().UnixNano()
	tk.stamp.Done = now
	tk.done = now
	close(tk.doneCh)
	tk.reg.noteDone(tk)
}

// ID returns the ticket's identifier ("t<seq>" or "t<seq>@<node>").
func (tk *Ticket) ID() string { return tk.id }

// Group returns the group the operation targets.
func (tk *Ticket) Group() string { return tk.group }

// Op returns the operation kind ("create", "join", ...).
func (tk *Ticket) Op() string { return tk.op.String() }

// Shard returns the shard the operation was placed on.
func (tk *Ticket) Shard() int { return tk.shard }

// Done reports whether the result has been published.
func (tk *Ticket) Done() bool {
	select {
	case <-tk.doneCh:
		return true
	default:
		return false
	}
}

// DoneCh closes when the result is published — the select surface for
// long-poll and SSE.
func (tk *Ticket) DoneCh() <-chan struct{} { return tk.doneCh }

// Wait blocks until the result is published or ctx ends.
func (tk *Ticket) Wait(ctx context.Context) error {
	select {
	case <-tk.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err returns the operation's error. Valid only after Done.
func (tk *Ticket) Err() error { return tk.err }

// Info returns the create result. Valid only after Done; ok is false
// for other ops.
func (tk *Ticket) Info() (groupd.GroupInfo, bool) { return tk.resInfo, tk.hasInfo }

// Update returns the join/leave result. Valid only after Done.
func (tk *Ticket) Update() (groupd.Update, bool) { return tk.resUp, tk.hasUp }

// Plan returns the plan result. Valid only after Done.
func (tk *Ticket) Plan() (groupd.PlanInfo, bool) { return tk.resPlan, tk.hasPlan }

// Stamps returns the stage-timing record. Before Done, only Submitted
// (and possibly Enqueued, observed racily as zero) are meaningful.
func (tk *Ticket) Stamps() TicketStamps {
	if tk.Done() {
		return tk.stamp
	}
	return TicketStamps{Submitted: tk.stamp.Submitted}
}

// ticketRegistry tracks every live ticket: open ones by ID plus a FIFO
// of completed ones awaiting TTL expiry or cap-pressure eviction.
type ticketRegistry struct {
	mu        sync.Mutex
	cap       int
	ttl       time.Duration
	node      string
	seq       uint64
	m         map[string]*Ticket
	completed []*Ticket // FIFO in completion order
	open      int
	peakOpen  int
	submitted uint64
	evicted   uint64
}

func newTicketRegistry(capacity int, ttl time.Duration, node string) *ticketRegistry {
	return &ticketRegistry{
		cap:  capacity,
		ttl:  ttl,
		node: node,
		m:    make(map[string]*Ticket),
	}
}

// add registers a new open ticket, evicting completed ones as needed.
func (r *ticketRegistry) add(op opKind, group string, shard int) (*Ticket, error) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(now.UnixNano())
	for len(r.m) >= r.cap && len(r.completed) > 0 {
		r.evictOldestLocked()
	}
	if len(r.m) >= r.cap {
		return nil, ErrTicketLimit
	}
	r.seq++
	id := fmt.Sprintf("t%d", r.seq)
	if r.node != "" {
		id += "@" + r.node
	}
	tk := &Ticket{
		id:     id,
		op:     op,
		group:  group,
		shard:  shard,
		doneCh: make(chan struct{}),
		reg:    r,
	}
	tk.stamp.Submitted = now.UnixNano()
	r.m[id] = tk
	r.open++
	if r.open > r.peakOpen {
		r.peakOpen = r.open
	}
	r.submitted++
	return tk, nil
}

// remove drops a ticket whose submission failed after registration
// (queue shed): it never completes, so it must not leak an open slot.
func (r *ticketRegistry) remove(tk *Ticket) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[tk.id]; ok {
		delete(r.m, tk.id)
		r.open--
	}
}

// noteDone moves a ticket from open to retained-completed.
func (r *ticketRegistry) noteDone(tk *Ticket) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[tk.id]; !ok {
		return // raced with remove; nothing to retain
	}
	r.open--
	r.completed = append(r.completed, tk)
	r.pruneLocked(time.Now().UnixNano())
}

// get looks a ticket up by ID.
func (r *ticketRegistry) get(id string) (*Ticket, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tk, ok := r.m[id]
	if !ok {
		return nil, ErrNoSuchTicket
	}
	return tk, nil
}

// pruneLocked evicts completed tickets past their TTL.
func (r *ticketRegistry) pruneLocked(nowNs int64) {
	cutoff := nowNs - r.ttl.Nanoseconds()
	for len(r.completed) > 0 && r.completed[0].done <= cutoff {
		r.evictOldestLocked()
	}
}

// evictOldestLocked drops the oldest completed ticket.
func (r *ticketRegistry) evictOldestLocked() {
	tk := r.completed[0]
	r.completed[0] = nil
	r.completed = r.completed[1:]
	delete(r.m, tk.id)
	r.evicted++
}

// stats snapshots the registry counters.
func (r *ticketRegistry) stats() TicketStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return TicketStats{
		Open:      r.open,
		PeakOpen:  r.peakOpen,
		Retained:  len(r.completed),
		Submitted: r.submitted,
		Evicted:   r.evicted,
		Cap:       r.cap,
	}
}

// TicketStats is the registry's externally visible state.
type TicketStats struct {
	Open      int    `json:"open"`
	PeakOpen  int    `json:"peakOpen"`
	Retained  int    `json:"retained"`
	Submitted uint64 `json:"submitted"`
	Evicted   uint64 `json:"evicted"`
	Cap       int    `json:"cap"`
}

// QueueStats is one shard's admission-queue backpressure view, returned
// alongside a freshly issued ticket so clients see depth and shed state
// in the 202 response.
type QueueStats struct {
	Shard    int    `json:"shard"`
	Len      int    `json:"len"`
	Depth    int    `json:"depth"`
	Shed     uint64 `json:"shed"`
	Canceled uint64 `json:"canceled"`
}

// --- Set async surface ---

// submit places t asynchronously: a ticket is issued under the
// placement read lock, the task is enqueued non-blocking, and the
// ticket returned immediately. A full queue sheds at once — no
// AdmitWait window — because an async client already owns a retry
// loop, and blocking the submit handler would reintroduce exactly the
// blocked-handler problem the ticket path removes.
func (s *Set) submit(t *task) (*Ticket, error) {
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	sh, err := s.locate(t.id)
	if err != nil {
		return nil, err
	}
	tk, err := s.tickets.add(t.op, t.id, sh.id)
	if err != nil {
		return nil, err
	}
	t.tk = tk
	t.enq = time.Now().UnixNano()
	select {
	case sh.queue <- t:
		return tk, nil
	default:
		sh.shed.Add(1)
		s.tickets.remove(tk)
		return nil, ErrOverloaded
	}
}

// SubmitCreate asynchronously registers a group; an empty ID is
// auto-assigned (and readable from the ticket's Group).
func (s *Set) SubmitCreate(id string, source int, members []int) (*Ticket, error) {
	if id == "" {
		id = fmt.Sprintf("g%d", s.nextID.Add(1))
	}
	t := s.getTask()
	t.op = opCreate
	t.id = id
	t.source = source
	t.members = members
	return s.submitTask(t)
}

// SubmitCreateWithBackend asynchronously registers a group with an
// explicit backend preference.
func (s *Set) SubmitCreateWithBackend(id string, source int, members []int, pref backend.Tier) (*Ticket, error) {
	if id == "" {
		id = fmt.Sprintf("g%d", s.nextID.Add(1))
	}
	t := s.getTask()
	t.op = opCreate
	t.id = id
	t.source = source
	t.members = members
	t.pref = pref
	t.hasPref = true
	return s.submitTask(t)
}

// SubmitJoin asynchronously admits output d to the group.
func (s *Set) SubmitJoin(id string, d int) (*Ticket, error) {
	t := s.getTask()
	t.op = opJoin
	t.id = id
	t.dest = d
	return s.submitTask(t)
}

// SubmitLeave asynchronously removes output d from the group.
func (s *Set) SubmitLeave(id string, d int) (*Ticket, error) {
	t := s.getTask()
	t.op = opLeave
	t.id = id
	t.dest = d
	return s.submitTask(t)
}

// SubmitDelete asynchronously unregisters the group.
func (s *Set) SubmitDelete(id string) (*Ticket, error) {
	t := s.getTask()
	t.op = opDelete
	t.id = id
	return s.submitTask(t)
}

// SubmitPlan asynchronously requests the group's column program.
func (s *Set) SubmitPlan(id string) (*Ticket, error) {
	t := s.getTask()
	t.op = opPlan
	t.id = id
	return s.submitTask(t)
}

// submitTask runs submit and recycles the task on failure.
func (s *Set) submitTask(t *task) (*Ticket, error) {
	tk, err := s.submit(t)
	if err != nil {
		s.putTask(t)
		return nil, err
	}
	return tk, nil
}

// Ticket returns the ticket with the given ID, or ErrNoSuchTicket.
func (s *Set) Ticket(id string) (*Ticket, error) { return s.tickets.get(id) }

// TicketStats snapshots the ticket registry.
func (s *Set) TicketStats() TicketStats { return s.tickets.stats() }

// QueueStats returns shard i's admission-queue backpressure view.
func (s *Set) QueueStats(i int) (QueueStats, error) {
	if i < 0 || i >= len(s.shards) {
		return QueueStats{}, fmt.Errorf("%w: %d", ErrNoSuchShard, i)
	}
	sh := s.shards[i]
	return QueueStats{
		Shard:    sh.id,
		Len:      len(sh.queue),
		Depth:    cap(sh.queue),
		Shed:     sh.shed.Load(),
		Canceled: sh.canceled.Load(),
	}, nil
}
