// Package shuffle implements the perfect shuffle and exchange
// interconnection functions used by the merging network of the reverse
// banyan network (Section 4, Figs. 6–7 of Yang & Wang), and the mapping
// between the physical shuffle wiring and the logical "pair" model that the
// compact switch-setting lemmas are stated in.
//
// Physical view: an n x n merging network is one column of n/2 switches.
// Input a of switch floor(a/2) is fed by merging-network input link
// Wire(a), and output a of the switch drives merging-network output link
// Wire(a), where Wire is the inverse perfect shuffle (Unshuffle here) —
// the wiring orientation of a *reverse* banyan network, which is what the
// paper's Fig. 6 "shuffle" denotes. Because the exchange bit (the LSB,
// distinguishing the two ports of one switch) lands in the most
// significant position, |Wire(a) - Wire(exchange(a))| = n/2: the network
// connects each pair of links {p, p + n/2} (p < n/2) through one switch,
// to the output links with the same addresses.
//
// Logical view (used by the lemmas and by package rbn): "switch p" is the
// switch joining link pair {p, p + n/2}. PhysicalSwitch converts a logical
// pair index to the physical switch address and LogicalPair inverts it;
// under the reverse-banyan wiring the two coincide (switch p joins links
// p and p + n/2), which the tests verify from first principles.
package shuffle

import "fmt"

// checkSize panics unless n is a power of two and at least 2.
func checkSize(n int) int {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("shuffle: network size %d is not a power of two >= 2", n))
	}
	m := 0
	for v := n; v > 1; v >>= 1 {
		m++
	}
	return m
}

// Shuffle returns the perfect shuffle of address a in an n-link network:
// the m-bit address is rotated left by one bit (b_{m-1} b_{m-2} ... b_0
// becomes b_{m-2} ... b_0 b_{m-1}).
func Shuffle(n, a int) int {
	m := checkSize(n)
	if a < 0 || a >= n {
		panic(fmt.Sprintf("shuffle: address %d out of range [0,%d)", a, n))
	}
	return ((a << 1) & (n - 1)) | (a >> (m - 1))
}

// Unshuffle is the inverse perfect shuffle: rotate the m-bit address right
// by one bit.
func Unshuffle(n, a int) int {
	m := checkSize(n)
	if a < 0 || a >= n {
		panic(fmt.Sprintf("shuffle: address %d out of range [0,%d)", a, n))
	}
	return (a >> 1) | ((a & 1) << (m - 1))
}

// Exchange flips the least significant bit of a: the two inputs of one
// switch are a and Exchange(a).
func Exchange(a int) int { return a ^ 1 }

// Wire is the merging-network wiring function: switch port a (an m-bit
// address; port a mod 2 of switch a div 2) attaches to merging-network
// link Wire(n, a) on both the input and the output side. It is the
// inverse perfect shuffle.
func Wire(n, a int) int { return Unshuffle(n, a) }

// PhysicalSwitch returns the physical address (0..n/2-1) of the switch
// that joins merging-network link pair {p, p+n/2} in an n-link merging
// network; p must be in [0, n/2).
func PhysicalSwitch(n, p int) int {
	if p < 0 || p >= n/2 {
		panic(fmt.Sprintf("shuffle: pair index %d out of range [0,%d)", p, n/2))
	}
	// Link p attaches to port a with Wire(a) = p, i.e. a = Shuffle(p);
	// the switch is a div 2. For p < n/2 the MSB of p is 0, so
	// Shuffle(p) = 2p and the switch address is p itself.
	return Shuffle(n, p) / 2
}

// LogicalPair returns the logical pair index p (0..n/2-1) served by the
// physical switch with address t in an n-link merging network: the
// smaller of the two link addresses Wire(2t), Wire(2t+1).
func LogicalPair(n, t int) int {
	if t < 0 || t >= n/2 {
		panic(fmt.Sprintf("shuffle: switch address %d out of range [0,%d)", t, n/2))
	}
	p := Wire(n, 2*t)
	if q := Wire(n, 2*t+1); q < p {
		p = q
	}
	return p
}

// BitReverse reverses the low `bits` bits of i. It is the permutation
// realized by the order() function of the routing-tag format (eq. 11).
func BitReverse(i, bits int) int {
	r := 0
	for b := 0; b < bits; b++ {
		r = (r << 1) | (i & 1)
		i >>= 1
	}
	return r
}

// Log2 returns log2(n) for a power-of-two n (and panics otherwise).
func Log2(n int) int {
	if n == 1 {
		return 0
	}
	return checkSize(n)
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
