package shuffle

import "testing"

// TestShuffleUnshuffleInverse checks the two rotations invert each other
// for all addresses up to n = 256.
func TestShuffleUnshuffleInverse(t *testing.T) {
	for n := 2; n <= 256; n *= 2 {
		for a := 0; a < n; a++ {
			if got := Unshuffle(n, Shuffle(n, a)); got != a {
				t.Fatalf("n=%d: Unshuffle(Shuffle(%d)) = %d", n, a, got)
			}
			if got := Shuffle(n, Unshuffle(n, a)); got != a {
				t.Fatalf("n=%d: Shuffle(Unshuffle(%d)) = %d", n, a, got)
			}
		}
	}
}

// TestShuffleIsRotation pins the definition: shuffle doubles modulo n-1
// style rotation (left rotate of the m-bit address).
func TestShuffleIsRotation(t *testing.T) {
	cases := []struct{ n, a, want int }{
		{8, 0, 0}, {8, 1, 2}, {8, 3, 6}, {8, 4, 1}, {8, 5, 3}, {8, 7, 7},
		{16, 8, 1}, {16, 9, 3},
	}
	for _, c := range cases {
		if got := Shuffle(c.n, c.a); got != c.want {
			t.Errorf("Shuffle(%d, %d) = %d, want %d", c.n, c.a, got, c.want)
		}
	}
}

// TestHalfApartProperty checks the key observation of Section 4:
// |Wire(a) - Wire(exchange(a))| = n/2 for every switch port a of the
// merging network's reverse-banyan wiring.
func TestHalfApartProperty(t *testing.T) {
	for n := 2; n <= 512; n *= 2 {
		for a := 0; a < n; a++ {
			d := Wire(n, a) - Wire(n, Exchange(a))
			if d < 0 {
				d = -d
			}
			if d != n/2 {
				t.Fatalf("n=%d a=%d: |Wire(a)-Wire(ā)| = %d, want %d", n, a, d, n/2)
			}
		}
	}
}

// TestPhysicalLogicalBijection checks PhysicalSwitch and LogicalPair are
// inverse bijections on [0, n/2): the physical shuffle wiring realizes
// exactly the logical pair model used by the lemmas.
func TestPhysicalLogicalBijection(t *testing.T) {
	for n := 2; n <= 512; n *= 2 {
		seen := make([]bool, n/2)
		for p := 0; p < n/2; p++ {
			tsw := PhysicalSwitch(n, p)
			if tsw < 0 || tsw >= n/2 {
				t.Fatalf("n=%d: PhysicalSwitch(%d) = %d out of range", n, p, tsw)
			}
			if seen[tsw] {
				t.Fatalf("n=%d: switch %d serves two pairs", n, tsw)
			}
			seen[tsw] = true
			if got := LogicalPair(n, tsw); got != p {
				t.Fatalf("n=%d: LogicalPair(PhysicalSwitch(%d)) = %d", n, p, got)
			}
		}
	}
}

// TestPhysicalWiringJoinsPair verifies from first principles that the
// switch PhysicalSwitch(n, p) is wired (through the shuffle) to links p
// and p+n/2 — the content of Figs. 6–7.
func TestPhysicalWiringJoinsPair(t *testing.T) {
	for n := 2; n <= 256; n *= 2 {
		for p := 0; p < n/2; p++ {
			tsw := PhysicalSwitch(n, p)
			a0, a1 := 2*tsw, 2*tsw+1
			l0, l1 := Wire(n, a0), Wire(n, a1)
			lo, hi := l0, l1
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo != p || hi != p+n/2 {
				t.Fatalf("n=%d: switch %d joins links (%d,%d), want (%d,%d)", n, tsw, lo, hi, p, p+n/2)
			}
		}
	}
}

// TestBitReverse checks the bit-reversal permutation.
func TestBitReverse(t *testing.T) {
	cases := []struct{ i, bits, want int }{
		{0, 3, 0}, {1, 3, 4}, {2, 3, 2}, {3, 3, 6}, {4, 3, 1}, {5, 3, 5}, {6, 3, 3}, {7, 3, 7},
		{0, 0, 0}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := BitReverse(c.i, c.bits); got != c.want {
			t.Errorf("BitReverse(%d, %d) = %d, want %d", c.i, c.bits, got, c.want)
		}
	}
	// Involution.
	for bits := 0; bits <= 10; bits++ {
		for i := 0; i < 1<<bits; i++ {
			if BitReverse(BitReverse(i, bits), bits) != i {
				t.Fatalf("BitReverse not an involution at (%d, %d)", i, bits)
			}
		}
	}
}

// TestLog2AndIsPow2 checks the size helpers.
func TestLog2AndIsPow2(t *testing.T) {
	if Log2(1) != 0 || Log2(2) != 1 || Log2(1024) != 10 {
		t.Error("Log2 wrong")
	}
	for _, n := range []int{1, 2, 4, 1 << 20} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 12, 1<<20 + 1} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Log2(3) did not panic")
		}
	}()
	Log2(3)
}

// TestPanicsOnBadArgs checks range validation.
func TestPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { Shuffle(8, 8) },
		func() { Shuffle(8, -1) },
		func() { Unshuffle(6, 0) },
		func() { PhysicalSwitch(8, 4) },
		func() { LogicalPair(8, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
