// Package stats provides the small statistical toolkit the experiment
// harness uses to check growth orders empirically: summary statistics,
// ordinary least squares, and polylog-exponent estimation. With it the
// Table 2 claims become fitted numbers — e.g. the BRSMN switch count over
// a size sweep fits cost(n) = c · n · log^q n with q ≈ 2 — rather than
// eyeballed ratio tables.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Fit is an ordinary-least-squares line fit.
type Fit struct {
	Slope, Intercept, R2 float64
}

// Linear fits ys = Slope*xs + Intercept and reports R².
func Linear(xs, ys []float64) (Fit, error) {
	n := len(xs)
	if n != len(ys) {
		return Fit{}, fmt.Errorf("stats: %d xs vs %d ys", n, len(ys))
	}
	if n < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, have %d", n)
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: degenerate fit (all xs equal)")
	}
	slope := sxy / sxx
	f := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		f.R2 = 1 // constant ys perfectly fit by a flat line
	} else {
		f.R2 = (sxy * sxy) / (sxx * syy)
	}
	return f, nil
}

// PowerExponent estimates p in value ≈ c · n^p by a log-log fit.
func PowerExponent(ns []int, values []float64) (Fit, error) {
	xs := make([]float64, len(ns))
	ys := make([]float64, len(values))
	for i := range ns {
		if ns[i] <= 0 || values[i] <= 0 {
			return Fit{}, fmt.Errorf("stats: log-log fit needs positive data")
		}
		xs[i] = math.Log(float64(ns[i]))
		ys[i] = math.Log(values[i])
	}
	return Linear(xs, ys)
}

// PolylogExponent estimates q in value ≈ c · n^base · log2(n)^q: it fits
// log(value / n^base) against log(log2 n). base = 0 fits a pure polylog,
// base = 1 the n·log^q family of Table 2.
func PolylogExponent(ns []int, values []float64, base float64) (Fit, error) {
	xs := make([]float64, len(ns))
	ys := make([]float64, len(values))
	for i := range ns {
		if ns[i] < 2 || values[i] <= 0 {
			return Fit{}, fmt.Errorf("stats: polylog fit needs n >= 2 and positive values")
		}
		l2 := math.Log2(float64(ns[i]))
		xs[i] = math.Log(l2)
		ys[i] = math.Log(values[i]) - base*math.Log(float64(ns[i]))
	}
	return Linear(xs, ys)
}
