package stats

import (
	"math"
	"testing"
)

// TestMeanStddev checks the summary statistics.
func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := Stddev(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("Stddev = %v", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Stddev([]float64{1})) {
		t.Error("degenerate inputs should be NaN")
	}
}

// TestLinearRecoversLine checks exact recovery on synthetic data.
func TestLinearRecoversLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	f, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-3) > 1e-12 || math.Abs(f.Intercept+7) > 1e-12 || math.Abs(f.R2-1) > 1e-12 {
		t.Errorf("fit %+v", f)
	}
	if _, err := Linear(xs, ys[:3]); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Linear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Linear([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate xs accepted")
	}
	flat, err := Linear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil || flat.Slope != 0 || flat.R2 != 1 {
		t.Errorf("flat fit %+v, %v", flat, err)
	}
}

// TestPowerExponent recovers p from n^p data.
func TestPowerExponent(t *testing.T) {
	ns := []int{4, 16, 64, 256, 1024}
	values := make([]float64, len(ns))
	for i, n := range ns {
		values[i] = 2.5 * math.Pow(float64(n), 1.5)
	}
	f, err := PowerExponent(ns, values)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-1.5) > 1e-9 {
		t.Errorf("p = %v, want 1.5", f.Slope)
	}
	if _, err := PowerExponent([]int{0, 2}, []float64{1, 2}); err == nil {
		t.Error("nonpositive n accepted")
	}
}

// TestPolylogExponent recovers q from n·log^q(n) data — the Table 2
// family.
func TestPolylogExponent(t *testing.T) {
	ns := []int{16, 64, 256, 1024, 4096}
	for _, q := range []float64{1, 2, 3} {
		values := make([]float64, len(ns))
		for i, n := range ns {
			values[i] = 0.7 * float64(n) * math.Pow(math.Log2(float64(n)), q)
		}
		f, err := PolylogExponent(ns, values, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f.Slope-q) > 1e-9 {
			t.Errorf("q = %v, want %v", f.Slope, q)
		}
	}
	// Pure polylog with base 0.
	values := make([]float64, len(ns))
	for i, n := range ns {
		values[i] = 3 * math.Pow(math.Log2(float64(n)), 2)
	}
	f, err := PolylogExponent(ns, values, 0)
	if err != nil || math.Abs(f.Slope-2) > 1e-9 {
		t.Errorf("base-0 q = %v, %v", f.Slope, err)
	}
	if _, err := PolylogExponent([]int{1, 4}, []float64{1, 2}, 0); err == nil {
		t.Error("n < 2 accepted")
	}
}
