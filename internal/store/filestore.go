package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FileStore is the crash-safe Store: one directory holding a framed
// write-ahead log plus the latest snapshot.
//
//	<dir>/wal.log        length+CRC32-framed record payloads
//	<dir>/snapshot.brss  latest snapshot (magic "BRSS", trailing CRC)
//
// Each log frame is
//
//	length  uint32 little-endian (payload bytes)
//	crc     uint32 little-endian, CRC32 (IEEE) of the payload
//	payload record.go wire format
//
// Appends go through a buffered writer and are fsynced in batches of
// FileConfig.FsyncBatch (every append when <= 1); Sync is the explicit
// durability barrier the manager invokes at epoch boundaries and
// shutdown. A crash can therefore tear at most the un-synced tail:
// Open scans the log, and at the first frame whose length or CRC does
// not check out it truncates the file back to the last good frame
// boundary (counting the event for /metrics) instead of failing
// recovery — the WAL contract is "prefix durable", not "suffix
// impossible".
//
// Snapshots are written to a temp file, fsynced, atomically renamed
// over the previous snapshot, and the directory fsynced, so a crash
// mid-snapshot leaves the prior snapshot intact. Truncate rewrites the
// log the same tmp-then-rename way.
type FileStore struct {
	dir string
	cfg FileConfig
	met *Metrics

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	buf      []byte // scratch for frame encoding
	lastLSN  uint64
	walBytes int64
	pending  int  // appends since the last fsync
	dirty    bool // buffered or written bytes not yet fsynced
	closed   bool

	recovered uint64 // records found at Open
	torn      uint64 // torn-tail truncations at Open
}

// FileConfig parameterizes a FileStore.
type FileConfig struct {
	// FsyncBatch is how many appends may accumulate before an fsync;
	// <= 1 fsyncs every append. Batching bounds the data a crash can
	// lose to the last batch, in exchange for amortizing the sync.
	FsyncBatch int
	// Metrics, when non-nil, receives the WAL and snapshot series of
	// metrics.go.
	Metrics *Metrics
}

const (
	walName      = "wal.log"
	snapshotName = "snapshot.brss"
	frameHeader  = 8       // length u32 + crc u32
	maxFrame     = 1 << 28 // 256 MiB; far beyond any real record
)

// OpenFile opens (creating if needed) the store directory, recovering
// the log: stale temp files from a crashed snapshot or truncation are
// removed, the log is scanned to find the last assigned LSN, and a
// torn tail is truncated away.
func OpenFile(dir string, cfg FileConfig) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	met := cfg.Metrics
	if met == nil {
		met = &Metrics{}
	}
	s := &FileStore{dir: dir, cfg: cfg, met: met}
	// A *.tmp left behind means the rename never happened; the final
	// files are intact and the temp content is garbage.
	os.Remove(s.walPath() + ".tmp")
	os.Remove(s.snapshotPath() + ".tmp")

	f, err := os.OpenFile(s.walPath(), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	good, count, maxLSN, scanErr := scanLog(f)
	if scanErr != nil {
		f.Close()
		return nil, scanErr
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if end > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		s.torn++
		met.TornTruncations.Inc()
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.walBytes = good
	s.lastLSN = maxLSN
	s.recovered = uint64(count)
	met.RecoveredRecords.Add(uint64(count))
	met.WALSize.Set(good)

	// The snapshot may cover LSNs the (truncated) log no longer holds.
	if snap, ok, err := s.LoadSnapshot(); err != nil {
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrUnknownVersion) {
			f.Close()
			return nil, err
		}
		// A corrupt snapshot is unrecoverable state loss; surface it
		// rather than silently booting empty.
		f.Close()
		return nil, fmt.Errorf("store: snapshot in %s: %w", dir, err)
	} else if ok && snap.LSN > s.lastLSN {
		s.lastLSN = snap.LSN
	}
	return s, nil
}

func (s *FileStore) walPath() string      { return filepath.Join(s.dir, walName) }
func (s *FileStore) snapshotPath() string { return filepath.Join(s.dir, snapshotName) }

// scanLog walks the framed log from the start, returning the offset
// just past the last valid frame, the valid-frame count, and the
// largest LSN seen. Any framing violation — short header, implausible
// length, CRC mismatch, undecodable payload — marks the end of the
// valid prefix (the torn tail the caller truncates).
func scanLog(f *os.File) (good int64, count int, maxLSN uint64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, 0, fmt.Errorf("store: %w", err)
	}
	r := bufio.NewReader(f)
	var header [frameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return good, count, maxLSN, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		crc := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxFrame {
			return good, count, maxLSN, nil
		}
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			return good, count, maxLSN, nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return good, count, maxLSN, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			if errors.Is(err, ErrUnknownVersion) {
				// A future-format record is not a torn write: refuse to
				// silently drop it and everything after it.
				return 0, 0, 0, fmt.Errorf("store: log record at offset %d: %w", good, err)
			}
			return good, count, maxLSN, nil
		}
		good += frameHeader + int64(length)
		count++
		if rec.LSN > maxLSN {
			maxLSN = rec.LSN
		}
	}
}

// Append implements Store.
func (s *FileStore) Append(rec Record) (uint64, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	rec.LSN = s.lastLSN + 1
	payload, err := appendRecord(s.buf[:0], rec)
	if err != nil {
		return 0, err
	}
	s.buf = payload[:0] // retain the (possibly grown) scratch buffer
	var header [frameHeader]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := s.w.Write(header[:]); err != nil {
		return 0, fmt.Errorf("store: wal append: %w", err)
	}
	if _, err := s.w.Write(payload); err != nil {
		return 0, fmt.Errorf("store: wal append: %w", err)
	}
	s.lastLSN = rec.LSN
	s.walBytes += frameHeader + int64(len(payload))
	s.pending++
	s.dirty = true
	if s.cfg.FsyncBatch <= 1 || s.pending >= s.cfg.FsyncBatch {
		if err := s.flushSyncLocked(); err != nil {
			return 0, err
		}
	}
	s.met.Appends.Inc()
	s.met.AppendBytes.Add(uint64(frameHeader + len(payload)))
	s.met.WALSize.Set(s.walBytes)
	s.met.AppendDur.ObserveDuration(time.Since(start))
	return rec.LSN, nil
}

// flushSyncLocked drains the buffered writer and fsyncs the log.
func (s *FileStore) flushSyncLocked() error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: wal flush: %w", err)
	}
	start := time.Now()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	s.met.FsyncDur.ObserveDuration(time.Since(start))
	s.met.Fsyncs.Inc()
	s.pending = 0
	s.dirty = false
	return nil
}

// Sync implements Store.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.dirty {
		return nil
	}
	return s.flushSyncLocked()
}

// Since implements Store. It flushes buffered appends first so the read
// observes everything appended so far (synced or not).
func (s *FileStore) Since(lsn uint64) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.w.Flush(); err != nil {
		return nil, fmt.Errorf("store: wal flush: %w", err)
	}
	return readLogSince(s.walPath(), s.walBytes, lsn)
}

// readLogSince decodes the first size bytes of the log at path,
// returning records with LSN > lsn. Inside the valid prefix every frame
// must check out — Open already truncated any torn tail, so a framing
// violation here is real corruption.
func readLogSince(path string, size int64, lsn uint64) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if int64(len(data)) > size {
		data = data[:size]
	}
	var out []Record
	for off := int64(0); off < int64(len(data)); {
		if int64(len(data))-off < frameHeader {
			return nil, fmt.Errorf("%w: torn frame header at offset %d", ErrCorrupt, off)
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length == 0 || length > maxFrame || off+frameHeader+length > int64(len(data)) {
			return nil, fmt.Errorf("%w: implausible frame at offset %d", ErrCorrupt, off)
		}
		payload := data[off+frameHeader : off+frameHeader+length]
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("%w: frame CRC mismatch at offset %d", ErrCorrupt, off)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return nil, fmt.Errorf("store: record at offset %d: %w", off, err)
		}
		if rec.LSN > lsn {
			out = append(out, rec)
		}
		off += frameHeader + length
	}
	return out, nil
}

// WriteSnapshot implements Store: tmp write, fsync, atomic rename,
// directory fsync.
func (s *FileStore) WriteSnapshot(snap Snapshot) (int, error) {
	enc, err := encodeSnapshot(snap)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	tmp := s.snapshotPath() + ".tmp"
	if err := writeFileSync(tmp, enc); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, s.snapshotPath()); err != nil {
		return 0, fmt.Errorf("store: snapshot rename: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return 0, err
	}
	if snap.LSN > s.lastLSN {
		s.lastLSN = snap.LSN
	}
	s.met.Snapshots.Inc()
	s.met.SnapshotSize.Set(int64(len(enc)))
	s.met.SnapshotDur.ObserveDuration(time.Since(start))
	return len(enc), nil
}

// LoadSnapshot implements Store.
func (s *FileStore) LoadSnapshot() (Snapshot, bool, error) {
	data, err := os.ReadFile(s.snapshotPath())
	if errors.Is(err, os.ErrNotExist) {
		return Snapshot{}, false, nil
	}
	if err != nil {
		return Snapshot{}, false, fmt.Errorf("store: %w", err)
	}
	snap, err := decodeSnapshot(data)
	if err != nil {
		return Snapshot{}, false, err
	}
	return snap, true, nil
}

// Truncate implements Store: the surviving suffix is rewritten to a
// temp log and atomically renamed into place.
func (s *FileStore) Truncate(upTo uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.flushSyncLocked(); err != nil {
		return err
	}
	recs, err := readLogSince(s.walPath(), s.walBytes, upTo)
	if err != nil {
		return err
	}
	var buf []byte
	for _, rec := range recs {
		payload, err := appendRecord(nil, rec)
		if err != nil {
			return err
		}
		var header [frameHeader]byte
		binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
		buf = append(buf, header[:]...)
		buf = append(buf, payload...)
	}
	tmp := s.walPath() + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, s.walPath()); err != nil {
		return fmt.Errorf("store: wal rotate: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(s.walPath(), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.walBytes = int64(len(buf))
	s.met.WALSize.Set(s.walBytes)
	return nil
}

// Close implements Store: flush, fsync, release.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.dirty {
		if err := s.flushSyncLocked(); err != nil {
			s.f.Close()
			s.closed = true
			return err
		}
	}
	s.closed = true
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// LastLSN returns the most recently assigned log sequence number.
func (s *FileStore) LastLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastLSN
}

// Recovered returns the valid records found and the torn-tail
// truncations performed when the store was opened.
func (s *FileStore) Recovered() (records, tornTruncations uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered, s.torn
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: dir fsync: %w", err)
	}
	return nil
}
