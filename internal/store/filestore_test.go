package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func openTestStore(t *testing.T, dir string, cfg FileConfig) *FileStore {
	t.Helper()
	s, err := OpenFile(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFileStoreAppendReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, FileConfig{FsyncBatch: 4})
	want := sampleRecords()
	for i := range want {
		lsn, err := s.Append(want[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i].LSN = lsn
	}
	// Since observes buffered (not yet fsynced) appends.
	got, err := s.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("live Since(0):\n got %+v\nwant %+v", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh handle recovers everything and continues the LSN sequence.
	s2 := openTestStore(t, dir, FileConfig{})
	if recs, torn := s2.Recovered(); recs != uint64(len(want)) || torn != 0 {
		t.Fatalf("recovered = %d records, %d torn; want %d, 0", recs, torn, len(want))
	}
	got, err = s2.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened Since(0):\n got %+v\nwant %+v", got, want)
	}
	lsn, err := s2.Append(Record{Op: OpEpoch, Epoch: 9})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != want[len(want)-1].LSN+1 {
		t.Fatalf("post-reopen LSN = %d, want %d", lsn, want[len(want)-1].LSN+1)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileStoreTornTail cuts the log mid-record and expects recovery to
// truncate back to the last whole record.
func TestFileStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, FileConfig{})
	var lastGood int64
	for i := 0; i < 5; i++ {
		if _, err := s.Append(Record{Op: OpJoin, Group: "g", Dest: i, Gen: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			lastGood = s.walBytes
		}
	}
	full := s.walBytes
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: keep its frame header and one payload byte.
	walPath := filepath.Join(dir, walName)
	if err := os.Truncate(walPath, lastGood+frameHeader+1); err != nil {
		t.Fatal(err)
	}
	s2 := openTestStore(t, dir, FileConfig{})
	if recs, torn := s2.Recovered(); recs != 4 || torn != 1 {
		t.Fatalf("after torn tail: recovered %d records, %d torn; want 4, 1", recs, torn)
	}
	got, err := s2.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3].Dest != 3 {
		t.Fatalf("surviving records = %+v", got)
	}
	// The file was physically truncated to the last good boundary, and
	// the next append reuses the torn record's LSN slot.
	if fi, err := os.Stat(walPath); err != nil || fi.Size() != lastGood {
		t.Fatalf("wal size = %v (err %v), want %d", fi.Size(), err, lastGood)
	}
	if fi, _ := os.Stat(walPath); fi.Size() >= full {
		t.Fatalf("truncation did not shrink the log")
	}
	lsn, err := s2.Append(Record{Op: OpJoin, Group: "g", Dest: 99, Gen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 {
		t.Fatalf("post-torn LSN = %d, want 5", lsn)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// And the repaired log replays cleanly.
	s3 := openTestStore(t, dir, FileConfig{})
	if recs, torn := s3.Recovered(); recs != 5 || torn != 0 {
		t.Fatalf("repaired log: recovered %d, torn %d", recs, torn)
	}
	s3.Close()
}

// TestFileStoreTornHeader tears inside the frame header itself.
func TestFileStoreTornHeader(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, FileConfig{})
	for i := 0; i < 3; i++ {
		if _, err := s.Append(Record{Op: OpEpoch, Epoch: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	good := s.walBytes
	s.Close()
	walPath := filepath.Join(dir, walName)
	// Append 3 stray bytes: a torn header after the last record.
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3})
	f.Close()
	s2 := openTestStore(t, dir, FileConfig{})
	if recs, torn := s2.Recovered(); recs != 3 || torn != 1 {
		t.Fatalf("recovered %d, torn %d; want 3, 1", recs, torn)
	}
	if fi, _ := os.Stat(walPath); fi.Size() != good {
		t.Fatalf("wal size = %d, want %d", fi.Size(), good)
	}
	s2.Close()
}

// TestFileStoreCorruptLastCRC flips a payload byte of the final record:
// the CRC catches it and recovery drops exactly that record.
func TestFileStoreCorruptLastCRC(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, FileConfig{})
	var offsets []int64
	for i := 0; i < 3; i++ {
		offsets = append(offsets, s.walBytes)
		if _, err := s.Append(Record{Op: OpFaultInject, Fault: "dead:0:1"}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[2]+frameHeader] ^= 0xff // first payload byte of record 3
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTestStore(t, dir, FileConfig{})
	if recs, torn := s2.Recovered(); recs != 2 || torn != 1 {
		t.Fatalf("recovered %d, torn %d; want 2, 1", recs, torn)
	}
	s2.Close()
}

func TestFileStoreSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, FileConfig{})
	snap := Snapshot{
		LSN:    5,
		Epoch:  2,
		NextID: 3,
		Groups: []GroupState{{ID: "g1", Source: 1, Gen: 4, Members: []int{2, 5, 9}}},
		Plans:  []PlanState{{ID: "g1", Gen: 4, Columns: 6, Blob: []byte("blobby")}},
		Faults: []string{"dead:1:2"},
	}
	n, err := s.WriteSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil || fi.Size() != int64(n) {
		t.Fatalf("snapshot file: %v size %d, want %d", err, fi.Size(), n)
	}
	got, ok, err := s.LoadSnapshot()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("got %+v want %+v", got, snap)
	}
	s.Close()
	// Survives reopen; LastLSN resumes from the snapshot even with an
	// empty log.
	s2 := openTestStore(t, dir, FileConfig{})
	got, ok, err = s2.LoadSnapshot()
	if err != nil || !ok || !reflect.DeepEqual(got, snap) {
		t.Fatalf("reopen: ok=%v err=%v got %+v", ok, err, got)
	}
	if s2.LastLSN() != snap.LSN {
		t.Fatalf("LastLSN = %d, want %d", s2.LastLSN(), snap.LSN)
	}
	s2.Close()
}

// TestFileStoreStaleTempFiles plants leftovers from a crashed snapshot
// write and truncation; Open must discard them and keep the real state.
func TestFileStoreStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, FileConfig{})
	if _, err := s.Append(Record{Op: OpEpoch, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteSnapshot(Snapshot{LSN: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	os.WriteFile(filepath.Join(dir, snapshotName+".tmp"), []byte("garbage"), 0o644)
	os.WriteFile(filepath.Join(dir, walName+".tmp"), []byte("garbage"), 0o644)
	s2 := openTestStore(t, dir, FileConfig{})
	if _, ok, err := s2.LoadSnapshot(); err != nil || !ok {
		t.Fatalf("snapshot after tmp cleanup: ok=%v err=%v", ok, err)
	}
	if recs, _ := s2.Recovered(); recs != 1 {
		t.Fatalf("recovered %d records, want 1", recs)
	}
	for _, tmp := range []string{snapshotName + ".tmp", walName + ".tmp"} {
		if _, err := os.Stat(filepath.Join(dir, tmp)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s survived open", tmp)
		}
	}
	s2.Close()
}

func TestFileStoreTruncate(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, FileConfig{FsyncBatch: 8})
	for i := 1; i <= 5; i++ {
		if _, err := s.Append(Record{Op: OpEpoch, Epoch: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Truncate(3); err != nil {
		t.Fatal(err)
	}
	got, err := s.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].LSN != 4 || got[1].LSN != 5 {
		t.Fatalf("after truncate: %+v", got)
	}
	// Appends continue on the rotated log and survive reopen.
	if _, err := s.Append(Record{Op: OpEpoch, Epoch: 6}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openTestStore(t, dir, FileConfig{})
	got, err = s2.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].LSN != 6 {
		t.Fatalf("after reopen: %+v", got)
	}
	s2.Close()
}

// TestFileStoreConcurrentAppend exercises the append path under -race.
func TestFileStoreConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, FileConfig{FsyncBatch: 32})
	var wg sync.WaitGroup
	const goroutines, per = 8, 25
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := s.Append(Record{Op: OpJoin, Group: "g", Dest: g*per + i, Gen: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*per {
		t.Fatalf("appended %d records, want %d", len(recs), goroutines*per)
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
	s.Close()
}

func TestFileStoreClosed(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, FileConfig{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := s.Append(Record{Op: OpEpoch}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}
