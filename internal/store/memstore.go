package store

import (
	"fmt"
	"sync"
)

// MemStore is the in-memory Store: records and snapshots survive only
// as long as the process, but the full contract — LSN assignment,
// Since, snapshot-then-truncate, round-tripping through the wire codecs
// — behaves exactly like FileStore, so every recovery test runs against
// it without touching disk. Safe for concurrent use.
//
// Records and snapshots are held encoded, so MemStore exercises the
// same wire paths (and surfaces the same codec errors) as the file
// implementation.
type MemStore struct {
	mu      sync.Mutex
	recs    []memRecord
	snap    []byte // encoded; nil when no snapshot written
	lastLSN uint64
	closed  bool

	appends   uint64
	syncs     uint64
	snapshots uint64
}

type memRecord struct {
	lsn     uint64
	payload []byte
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore { return &MemStore{} }

// Append implements Store.
func (s *MemStore) Append(rec Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.lastLSN++
	rec.LSN = s.lastLSN
	payload, err := appendRecord(nil, rec)
	if err != nil {
		s.lastLSN--
		return 0, err
	}
	s.recs = append(s.recs, memRecord{lsn: rec.LSN, payload: payload})
	s.appends++
	return rec.LSN, nil
}

// Sync implements Store (a no-op beyond bookkeeping: memory is as
// durable as it gets).
func (s *MemStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.syncs++
	return nil
}

// Since implements Store.
func (s *MemStore) Since(lsn uint64) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	var out []Record
	for _, mr := range s.recs {
		if mr.lsn <= lsn {
			continue
		}
		rec, err := decodeRecord(mr.payload)
		if err != nil {
			return nil, fmt.Errorf("store: record %d: %w", mr.lsn, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// WriteSnapshot implements Store.
func (s *MemStore) WriteSnapshot(snap Snapshot) (int, error) {
	enc, err := encodeSnapshot(snap)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.snap = enc
	s.snapshots++
	return len(enc), nil
}

// LoadSnapshot implements Store.
func (s *MemStore) LoadSnapshot() (Snapshot, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Snapshot{}, false, ErrClosed
	}
	if s.snap == nil {
		return Snapshot{}, false, nil
	}
	snap, err := decodeSnapshot(s.snap)
	if err != nil {
		return Snapshot{}, false, err
	}
	return snap, true, nil
}

// Truncate implements Store.
func (s *MemStore) Truncate(upTo uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	keep := s.recs[:0]
	for _, mr := range s.recs {
		if mr.lsn > upTo {
			keep = append(keep, mr)
		}
	}
	s.recs = keep
	return nil
}

// Close implements Store. The stored state remains readable through a
// fresh handle only in the file implementation; a closed MemStore is
// terminal, but tests that model a restart simply keep using one
// MemStore across two managers without closing it.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Len returns the live (non-truncated) record count.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// HasSnapshot reports whether a snapshot has been written.
func (s *MemStore) HasSnapshot() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap != nil
}
