package store

import "brsmn/internal/obs"

// Metrics are the durable-store instruments, all under the brsmn_
// prefix:
//
//	brsmn_wal_append_duration_seconds   histogram  one Append, framing + batched fsync share
//	brsmn_wal_fsync_duration_seconds    histogram  one fsync of the log
//	brsmn_wal_appends_total             counter    records appended
//	brsmn_wal_fsyncs_total              counter    log fsyncs (batching ratio = appends/fsyncs)
//	brsmn_wal_bytes_total               counter    framed bytes appended
//	brsmn_wal_size_bytes                gauge      live log size (falls at truncation)
//	brsmn_snapshot_duration_seconds     histogram  snapshot encode+write+rename
//	brsmn_snapshot_size_bytes           gauge      last written snapshot size
//	brsmn_snapshots_total               counter    snapshots written
//	brsmn_recovery_records_total        counter    valid log records found at open
//	brsmn_wal_torn_truncations_total    counter    torn tails truncated at open
//
// Every field is an obs instrument and obs instruments are nil-receiver
// safe, so a zero Metrics (the no-registry case) costs nothing.
type Metrics struct {
	AppendDur        *obs.Histogram
	FsyncDur         *obs.Histogram
	Appends          *obs.Counter
	Fsyncs           *obs.Counter
	AppendBytes      *obs.Counter
	WALSize          *obs.Gauge
	SnapshotDur      *obs.Histogram
	SnapshotSize     *obs.Gauge
	Snapshots        *obs.Counter
	RecoveredRecords *obs.Counter
	TornTruncations  *obs.Counter
}

// RegisterMetrics wires the store series into reg, folding label (e.g.
// `shard="2"`) into every name so per-shard stores share one registry.
// A nil registry returns an inert Metrics.
func RegisterMetrics(reg *obs.Registry, label string) *Metrics {
	if reg == nil {
		return &Metrics{}
	}
	lbl := func(name string) string { return obs.WithLabel(name, label) }
	return &Metrics{
		AppendDur: reg.Histogram(lbl("brsmn_wal_append_duration_seconds"),
			"Wall-clock duration of one WAL append (framing plus any batched fsync).", obs.SecondsBuckets()),
		FsyncDur: reg.Histogram(lbl("brsmn_wal_fsync_duration_seconds"),
			"Wall-clock duration of one WAL fsync.", obs.SecondsBuckets()),
		Appends: reg.Counter(lbl("brsmn_wal_appends_total"),
			"Mutation records appended to the WAL."),
		Fsyncs: reg.Counter(lbl("brsmn_wal_fsyncs_total"),
			"WAL fsyncs (appends/fsyncs is the realized batching ratio)."),
		AppendBytes: reg.Counter(lbl("brsmn_wal_bytes_total"),
			"Framed bytes appended to the WAL."),
		WALSize: reg.Gauge(lbl("brsmn_wal_size_bytes"),
			"Live WAL size; falls when a snapshot truncates the log."),
		SnapshotDur: reg.Histogram(lbl("brsmn_snapshot_duration_seconds"),
			"Wall-clock duration of one snapshot encode, write and rename.", obs.SecondsBuckets()),
		SnapshotSize: reg.Gauge(lbl("brsmn_snapshot_size_bytes"),
			"Size of the most recently written snapshot."),
		Snapshots: reg.Counter(lbl("brsmn_snapshots_total"),
			"Snapshots written."),
		RecoveredRecords: reg.Counter(lbl("brsmn_recovery_records_total"),
			"Valid WAL records found when the store was opened."),
		TornTruncations: reg.Counter(lbl("brsmn_wal_torn_truncations_total"),
			"Torn WAL tails truncated away during recovery."),
	}
}
