// Record wire codec. A record payload (the bytes framed by the file
// log, or held directly by MemStore) is:
//
//	version uint8 (recordVersion)
//	op      uint8
//	lsn     uvarint
//	then per op:
//	  create        group, source uvarint, gen uvarint, nmembers uvarint, members uvarint...
//	  delete        group, gen uvarint
//	  join | leave  group, dest uvarint, gen uvarint
//	  epoch         epoch uvarint
//	  fault-inject  fault
//	  fault-clear   (nothing)
//
// where strings are uvarint length + raw bytes. The version byte leads
// so a future revision can change everything after it; decoding a
// record from a newer revision fails with ErrUnknownVersion rather than
// misparsing.

package store

import (
	"encoding/binary"
	"fmt"
)

// recordVersion is the current record wire revision.
const recordVersion = 1

// appendRecord encodes rec onto buf and returns the extended slice.
func appendRecord(buf []byte, rec Record) ([]byte, error) {
	buf = append(buf, recordVersion, uint8(rec.Op))
	buf = binary.AppendUvarint(buf, rec.LSN)
	switch rec.Op {
	case OpCreate:
		buf = appendString(buf, rec.Group)
		buf = binary.AppendUvarint(buf, uint64(rec.Source))
		buf = binary.AppendUvarint(buf, rec.Gen)
		buf = binary.AppendUvarint(buf, uint64(len(rec.Members)))
		for _, m := range rec.Members {
			if m < 0 {
				return nil, fmt.Errorf("store: negative member %d", m)
			}
			buf = binary.AppendUvarint(buf, uint64(m))
		}
	case OpDelete:
		buf = appendString(buf, rec.Group)
		buf = binary.AppendUvarint(buf, rec.Gen)
	case OpJoin, OpLeave:
		buf = appendString(buf, rec.Group)
		buf = binary.AppendUvarint(buf, uint64(rec.Dest))
		buf = binary.AppendUvarint(buf, rec.Gen)
	case OpEpoch:
		buf = binary.AppendUvarint(buf, uint64(rec.Epoch))
	case OpFaultInject:
		buf = appendString(buf, rec.Fault)
	case OpFaultClear:
	default:
		return nil, fmt.Errorf("store: cannot encode op %d", uint8(rec.Op))
	}
	return buf, nil
}

// decodeRecord parses one record payload.
func decodeRecord(data []byte) (Record, error) {
	if len(data) < 2 {
		return Record{}, fmt.Errorf("%w: record shorter than header", ErrCorrupt)
	}
	if data[0] != recordVersion {
		return Record{}, fmt.Errorf("%w: record version %d (this build reads %d)", ErrUnknownVersion, data[0], recordVersion)
	}
	rec := Record{Op: Op(data[1])}
	d := decoder{data: data[2:]}
	rec.LSN = d.uvarint()
	switch rec.Op {
	case OpCreate:
		rec.Group = d.string()
		rec.Source = int(d.uvarint())
		rec.Gen = d.uvarint()
		n := d.uvarint()
		if n > uint64(len(d.data)) { // each member is at least one byte
			return Record{}, fmt.Errorf("%w: member count %d exceeds payload", ErrCorrupt, n)
		}
		if n > 0 {
			rec.Members = make([]int, n)
			for i := range rec.Members {
				rec.Members[i] = int(d.uvarint())
			}
		}
	case OpDelete:
		rec.Group = d.string()
		rec.Gen = d.uvarint()
	case OpJoin, OpLeave:
		rec.Group = d.string()
		rec.Dest = int(d.uvarint())
		rec.Gen = d.uvarint()
	case OpEpoch:
		rec.Epoch = int64(d.uvarint())
	case OpFaultInject:
		rec.Fault = d.string()
	case OpFaultClear:
	default:
		return Record{}, fmt.Errorf("%w: unknown op %d", ErrCorrupt, uint8(rec.Op))
	}
	if d.err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, d.err)
	}
	if len(d.data) != 0 {
		return Record{}, fmt.Errorf("%w: %d trailing record bytes", ErrCorrupt, len(d.data))
	}
	return rec, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder is a cursor over a record or snapshot payload that latches
// the first decode error, so field reads chain without per-field
// checks.
type decoder struct {
	data []byte
	err  error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.err = fmt.Errorf("truncated uvarint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.data)) {
		d.err = fmt.Errorf("string length %d exceeds payload", n)
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.data)) {
		d.err = fmt.Errorf("blob length %d exceeds payload", n)
		return nil
	}
	b := append([]byte(nil), d.data[:n]...)
	d.data = d.data[n:]
	return b
}
