// Snapshot wire codec. A snapshot file (or MemStore blob) is:
//
//	magic    [4]byte "BRSS"
//	version  uint8 (snapshotVersion)
//	lsn      uvarint
//	epoch    uvarint
//	nextID   uvarint
//	ngroups  uvarint, then per group:
//	  id uvarint-string, source uvarint, gen uvarint,
//	  nmembers uvarint, members uvarint...
//	nplans   uvarint, then per plan:
//	  id uvarint-string, gen uvarint, columns uvarint,
//	  blob uvarint-bytes (plancodec format, itself magic+versioned)
//	nfaults  uvarint, then per fault: spec uvarint-string
//	crc      uint32 little-endian, CRC32 (IEEE) of everything above
//
// The trailing CRC makes a torn snapshot write detectable even though
// snapshots are also written tmp-then-rename; a failed CRC surfaces as
// ErrCorrupt rather than silently recovering half a registry.

package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	snapshotMagic   = "BRSS"
	snapshotVersion = 1
)

// encodeSnapshot serializes snap.
func encodeSnapshot(snap Snapshot) ([]byte, error) {
	buf := make([]byte, 0, 64+len(snap.Groups)*32+len(snap.Plans)*64)
	buf = append(buf, snapshotMagic...)
	buf = append(buf, snapshotVersion)
	buf = binary.AppendUvarint(buf, snap.LSN)
	buf = binary.AppendUvarint(buf, uint64(snap.Epoch))
	buf = binary.AppendUvarint(buf, snap.NextID)
	buf = binary.AppendUvarint(buf, uint64(len(snap.Groups)))
	for _, g := range snap.Groups {
		buf = appendString(buf, g.ID)
		buf = binary.AppendUvarint(buf, uint64(g.Source))
		buf = binary.AppendUvarint(buf, g.Gen)
		buf = binary.AppendUvarint(buf, uint64(len(g.Members)))
		for _, m := range g.Members {
			if m < 0 {
				return nil, fmt.Errorf("store: snapshot group %q: negative member %d", g.ID, m)
			}
			buf = binary.AppendUvarint(buf, uint64(m))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(snap.Plans)))
	for _, p := range snap.Plans {
		buf = appendString(buf, p.ID)
		buf = binary.AppendUvarint(buf, p.Gen)
		buf = binary.AppendUvarint(buf, uint64(p.Columns))
		buf = binary.AppendUvarint(buf, uint64(len(p.Blob)))
		buf = append(buf, p.Blob...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(snap.Faults)))
	for _, f := range snap.Faults {
		buf = appendString(buf, f)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// decodeSnapshot parses a serialized snapshot.
func decodeSnapshot(data []byte) (Snapshot, error) {
	if len(data) < len(snapshotMagic)+1+4 || string(data[:4]) != snapshotMagic {
		return Snapshot{}, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return Snapshot{}, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}
	if data[4] != snapshotVersion {
		return Snapshot{}, fmt.Errorf("%w: snapshot version %d (this build reads %d)", ErrUnknownVersion, data[4], snapshotVersion)
	}
	d := decoder{data: body[5:]}
	var snap Snapshot
	snap.LSN = d.uvarint()
	snap.Epoch = int64(d.uvarint())
	snap.NextID = d.uvarint()
	ngroups := d.uvarint()
	if d.err == nil && ngroups > uint64(len(d.data)) {
		return Snapshot{}, fmt.Errorf("%w: group count %d exceeds payload", ErrCorrupt, ngroups)
	}
	for i := uint64(0); i < ngroups && d.err == nil; i++ {
		g := GroupState{ID: d.string(), Source: int(d.uvarint()), Gen: d.uvarint()}
		nmembers := d.uvarint()
		if d.err == nil && nmembers > uint64(len(d.data)) {
			return Snapshot{}, fmt.Errorf("%w: member count %d exceeds payload", ErrCorrupt, nmembers)
		}
		for j := uint64(0); j < nmembers && d.err == nil; j++ {
			g.Members = append(g.Members, int(d.uvarint()))
		}
		snap.Groups = append(snap.Groups, g)
	}
	nplans := d.uvarint()
	if d.err == nil && nplans > uint64(len(d.data)) {
		return Snapshot{}, fmt.Errorf("%w: plan count %d exceeds payload", ErrCorrupt, nplans)
	}
	for i := uint64(0); i < nplans && d.err == nil; i++ {
		p := PlanState{ID: d.string(), Gen: d.uvarint(), Columns: int(d.uvarint())}
		p.Blob = d.bytes()
		snap.Plans = append(snap.Plans, p)
	}
	nfaults := d.uvarint()
	if d.err == nil && nfaults > uint64(len(d.data)) {
		return Snapshot{}, fmt.Errorf("%w: fault count %d exceeds payload", ErrCorrupt, nfaults)
	}
	for i := uint64(0); i < nfaults && d.err == nil; i++ {
		snap.Faults = append(snap.Faults, d.string())
	}
	if d.err != nil {
		return Snapshot{}, fmt.Errorf("%w: %v", ErrCorrupt, d.err)
	}
	if len(d.data) != 0 {
		return Snapshot{}, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(d.data))
	}
	return snap, nil
}
