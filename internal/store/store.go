// Package store is the durable control plane behind the serving stack:
// a write-ahead log of membership and fault mutations plus periodic
// state snapshots, behind a narrow Store interface with a memory
// implementation for tests (MemStore) and a crash-safe file
// implementation for production (FileStore).
//
// The contract mirrors classic WAL recovery. Every state mutation the
// group manager applies is first appended as a versioned Record and
// assigned a log sequence number (LSN). Periodically the manager writes
// a Snapshot — full group registry, current-generation plan-cache
// payloads (plancodec blobs, so warm plans survive restart), armed
// fault specs — stamped with the LSN it covers, after which the log
// prefix up to that LSN is truncated. Recovery is snapshot load + replay
// of the log suffix; replay is made idempotent by the per-group
// generation counters carried in the records, so a snapshot taken
// concurrently with appends only ever re-applies, never loses.
//
// FileStore's log framing (length + CRC32C per record), fsync batching,
// torn-tail truncation and atomic-rename snapshots are documented in
// filestore.go and DESIGN.md "Durability".
package store

import "errors"

// Sentinel errors.
var (
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrUnknownVersion reports a record or snapshot written by a newer
	// format revision than this build understands.
	ErrUnknownVersion = errors.New("store: unknown format version")
	// ErrCorrupt reports a snapshot or mid-log record that fails
	// validation (bad magic, CRC mismatch, truncated fields).
	ErrCorrupt = errors.New("store: corrupt data")
)

// Op enumerates the mutation record kinds. Values are part of the wire
// format: never renumber, only append.
type Op uint8

const (
	// OpCreate registers a group (Group, Source, Members, Gen=1).
	OpCreate Op = iota + 1
	// OpDelete unregisters a group (Group, Gen at deletion).
	OpDelete
	// OpJoin admits Dest to Group, producing generation Gen.
	OpJoin
	// OpLeave removes Dest from Group, producing generation Gen.
	OpLeave
	// OpEpoch advances the completed-epoch counter to Epoch.
	OpEpoch
	// OpFaultInject arms one fault, in -fault-inject spec syntax (Fault).
	OpFaultInject
	// OpFaultClear disarms the whole fault set.
	OpFaultClear
)

// String renders the op for logs and tests.
func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpDelete:
		return "delete"
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	case OpEpoch:
		return "epoch"
	case OpFaultInject:
		return "fault-inject"
	case OpFaultClear:
		return "fault-clear"
	}
	return "unknown"
}

// Record is one logged mutation. Only the fields relevant to Op are
// encoded (see record.go for the per-op layouts); the rest are zero.
// LSN is assigned by Append and must be zero on submission.
type Record struct {
	LSN     uint64
	Op      Op
	Group   string
	Source  int
	Dest    int
	Gen     uint64
	Members []int
	Epoch   int64
	Fault   string
}

// GroupState is one group frozen into a snapshot.
type GroupState struct {
	ID      string
	Source  int
	Gen     uint64
	Members []int
}

// PlanState is one group's cached column program frozen into a
// snapshot: the plancodec-encoded blob the plan cache would serve for
// (ID, Gen) on a healthy fabric.
type PlanState struct {
	ID      string
	Gen     uint64
	Columns int
	Blob    []byte
}

// Snapshot is the full durable state at one log position. Replaying
// records with LSN > Snapshot.LSN on top of it reconstructs the live
// state.
type Snapshot struct {
	// LSN is the last log sequence number the snapshot covers.
	LSN uint64
	// Epoch is the completed reroute-epoch counter.
	Epoch int64
	// NextID is the auto-assigned group ID counter ("g<k>").
	NextID uint64
	Groups []GroupState
	Plans  []PlanState
	// Faults is the armed fault set in -fault-inject spec syntax.
	Faults []string
}

// SnapshotInfo summarizes one written snapshot — the admin endpoint's
// and the recovery benchmark's accounting.
type SnapshotInfo struct {
	Shard      int    `json:"shard"`
	LSN        uint64 `json:"lsn"`
	Groups     int    `json:"groups"`
	Plans      int    `json:"plans"`
	Bytes      int    `json:"bytes"`
	DurationNs int64  `json:"durationNs"`
}

// Store is the durability contract the group manager writes through.
// Implementations must be safe for concurrent use; Append calls are
// serialized internally and LSNs are assigned in append order.
type Store interface {
	// Append logs one mutation record and returns its assigned LSN.
	// Durability follows the implementation's sync policy (FileStore
	// batches fsyncs); Sync is the explicit barrier.
	Append(rec Record) (uint64, error)
	// Sync makes every appended record durable before returning.
	Sync() error
	// Since returns the logged records with LSN > lsn, in log order.
	Since(lsn uint64) ([]Record, error)
	// WriteSnapshot atomically replaces the stored snapshot and returns
	// its encoded size in bytes. It does not truncate the log — callers
	// pair it with Truncate(snap.LSN) once the write has succeeded.
	WriteSnapshot(snap Snapshot) (int, error)
	// LoadSnapshot returns the stored snapshot, or ok=false when none
	// has been written.
	LoadSnapshot() (Snapshot, bool, error)
	// Truncate drops the log prefix with LSN <= upTo.
	Truncate(upTo uint64) error
	// Close flushes and releases the store. Further calls fail with
	// ErrClosed.
	Close() error
}
