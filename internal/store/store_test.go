package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
)

// restampCRC recomputes a snapshot's trailing CRC after a deliberate
// body edit, so tests can isolate non-CRC error paths.
func restampCRC(enc []byte) ([]byte, error) {
	if len(enc) < 4 {
		return nil, errors.New("too short")
	}
	body := append([]byte(nil), enc[:len(enc)-4]...)
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body)), nil
}

// sampleRecords covers every op with representative field shapes.
func sampleRecords() []Record {
	return []Record{
		{Op: OpCreate, Group: "conf", Source: 2, Gen: 1, Members: []int{3, 4, 7}},
		{Op: OpCreate, Group: "empty", Source: 0, Gen: 1},
		{Op: OpJoin, Group: "conf", Dest: 9, Gen: 2},
		{Op: OpLeave, Group: "conf", Dest: 3, Gen: 3},
		{Op: OpEpoch, Epoch: 42},
		{Op: OpFaultInject, Fault: "stuck:3:1:cross"},
		{Op: OpFaultClear},
		{Op: OpDelete, Group: "conf", Gen: 3},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		rec.LSN = 7
		enc, err := appendRecord(nil, rec)
		if err != nil {
			t.Fatalf("%v: %v", rec.Op, err)
		}
		got, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("%v: %v", rec.Op, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("%v round trip:\n got %+v\nwant %+v", rec.Op, got, rec)
		}
	}
}

func TestRecordRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ops := []Op{OpCreate, OpDelete, OpJoin, OpLeave, OpEpoch, OpFaultInject, OpFaultClear}
	for i := 0; i < 500; i++ {
		rec := Record{LSN: rng.Uint64() >> 1, Op: ops[rng.Intn(len(ops))]}
		switch rec.Op {
		case OpCreate:
			rec.Group = randID(rng)
			rec.Source = rng.Intn(1 << 20)
			rec.Gen = 1
			for j := rng.Intn(8); j > 0; j-- {
				rec.Members = append(rec.Members, rng.Intn(1<<20))
			}
		case OpDelete:
			rec.Group = randID(rng)
			rec.Gen = rng.Uint64() >> 1
		case OpJoin, OpLeave:
			rec.Group = randID(rng)
			rec.Dest = rng.Intn(1 << 20)
			rec.Gen = rng.Uint64() >> 1
		case OpEpoch:
			rec.Epoch = rng.Int63()
		case OpFaultInject:
			rec.Fault = randID(rng)
		}
		enc, err := appendRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("record %d (%v): %v", i, rec.Op, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got, rec)
		}
	}
}

func randID(rng *rand.Rand) string {
	const alphabet = "abcdefghij-0123456789"
	b := make([]byte, 1+rng.Intn(12))
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

func TestRecordUnknownVersion(t *testing.T) {
	enc, err := appendRecord(nil, Record{Op: OpEpoch, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	enc[0] = recordVersion + 1
	if _, err := decodeRecord(enc); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("future record version: err = %v, want ErrUnknownVersion", err)
	}
}

func TestRecordCorruption(t *testing.T) {
	enc, err := appendRecord(nil, Record{Op: OpCreate, Group: "g", Source: 1, Gen: 1, Members: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"header only": enc[:2],
		"truncated":   enc[:len(enc)-1],
		"trailing":    append(append([]byte(nil), enc...), 0),
		"unknown op":  {recordVersion, 99, 1},
	}
	for name, data := range cases {
		if _, err := decodeRecord(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := Snapshot{
		LSN:    99,
		Epoch:  7,
		NextID: 12,
		Groups: []GroupState{
			{ID: "a", Source: 0, Gen: 3, Members: []int{1, 2, 3}},
			{ID: "b", Source: 5, Gen: 1},
		},
		Plans: []PlanState{
			{ID: "a", Gen: 3, Columns: 9, Blob: []byte("BRSP-fake-blob")},
		},
		Faults: []string{"dead:0:1", "stuck:2:3:cross"},
	}
	enc, err := encodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, snap)
	}
}

func TestSnapshotCorruption(t *testing.T) {
	enc, err := encodeSnapshot(Snapshot{LSN: 1, Groups: []GroupState{{ID: "g", Gen: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := decodeSnapshot(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: err = %v, want ErrCorrupt", err)
	}
	if _, err := decodeSnapshot(enc[:len(enc)-2]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: err = %v, want ErrCorrupt", err)
	}
	if _, err := decodeSnapshot([]byte("NOPE")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotUnknownVersion(t *testing.T) {
	// Bump the version byte and re-stamp the CRC so only the version is
	// wrong.
	enc, err := encodeSnapshot(Snapshot{LSN: 1})
	if err != nil {
		t.Fatal(err)
	}
	enc[4] = snapshotVersion + 1
	restamped, err := restampCRC(enc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeSnapshot(restamped); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("future snapshot version: err = %v, want ErrUnknownVersion", err)
	}
}

func TestMemStoreLog(t *testing.T) {
	s := NewMem()
	var lsns []uint64
	for _, rec := range sampleRecords() {
		lsn, err := s.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] != lsns[i-1]+1 {
			t.Fatalf("LSNs not sequential: %v", lsns)
		}
	}
	all, err := s.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(lsns) {
		t.Fatalf("Since(0) = %d records, want %d", len(all), len(lsns))
	}
	for i, rec := range all {
		want := sampleRecords()[i]
		want.LSN = lsns[i]
		if !reflect.DeepEqual(rec, want) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, rec, want)
		}
	}
	tail, err := s.Since(lsns[4])
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 || tail[0].LSN != lsns[5] {
		t.Fatalf("Since(%d) = %+v", lsns[4], tail)
	}
	if err := s.Truncate(lsns[5]); err != nil {
		t.Fatal(err)
	}
	rest, err := s.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0].LSN != lsns[6] {
		t.Fatalf("after truncate: %+v", rest)
	}
	// LSNs keep ascending after truncation.
	lsn, err := s.Append(Record{Op: OpEpoch, Epoch: 50})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != lsns[len(lsns)-1]+1 {
		t.Fatalf("post-truncate LSN = %d, want %d", lsn, lsns[len(lsns)-1]+1)
	}
}

func TestMemStoreSnapshot(t *testing.T) {
	s := NewMem()
	if _, ok, err := s.LoadSnapshot(); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	snap := Snapshot{LSN: 3, Epoch: 1, Groups: []GroupState{{ID: "g", Source: 1, Gen: 2, Members: []int{4}}}}
	if _, err := s.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.LoadSnapshot()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("got %+v want %+v", got, snap)
	}
}

func TestMemStoreClosed(t *testing.T) {
	s := NewMem()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Record{Op: OpEpoch}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if _, err := s.Since(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("since after close: %v", err)
	}
	if _, _, err := s.LoadSnapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("load after close: %v", err)
	}
}
