// Package svg renders routed networks as SVG figures — the graphical
// counterpart of the paper's Fig. 2: the flattened switch columns, the
// links between them, and each connection's multicast tree drawn in its
// own color, fanning out from its input to exactly its destination set.
// The output is self-contained SVG 1.1 with no scripts or external
// references.
package svg

import (
	"fmt"
	"sort"
	"strings"

	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/paths"
)

// palette holds visually distinct stroke colors, cycled per source.
var palette = []string{
	"#1965b0", "#dc050c", "#4eb265", "#882e72",
	"#f1932d", "#7bafde", "#b17ba6", "#4d8f00",
	"#e8601c", "#5289c7", "#90c987", "#d1bbd7",
}

// geometry constants (pixels).
const (
	colGap   = 64
	rowGap   = 28
	leftPad  = 70
	topPad   = 40
	swWidth  = 16
	swHeight = 20
)

// Render draws a routed assignment: every switch of the flattened
// fabric, light-gray idle wiring, and the embedded multicast trees in
// per-source colors. It verifies the trees before drawing.
func Render(a mcast.Assignment, res *core.Result) (string, error) {
	trees, err := paths.VerifyAll(a, res)
	if err != nil {
		return "", err
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		return "", err
	}
	n := a.N
	width := leftPad*2 + (len(cols)+1)*colGap
	height := topPad*2 + n*rowGap

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="monospace" font-size="13">%d x %d BRSMN — %s</text>`+"\n",
		leftPad, topPad/2+4, n, n, xmlEscape(a.String()))

	// Link y-coordinate of wire `link` between column boundaries.
	y := func(link int) int { return topPad + link*rowGap + rowGap/2 }
	// x-coordinate of the wire segment after column ci (ci = -1 is the
	// input side).
	x := func(ci int) int { return leftPad + (ci+1)*colGap }

	// Idle wiring: straight light segments for every link span.
	for link := 0; link < n; link++ {
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#dddddd" stroke-width="1"/>`+"\n",
			x(-1), y(link), x(len(cols)-1)+colGap/2, y(link))
	}

	// Switch boxes per column.
	for ci, col := range cols {
		cx := x(ci) - colGap/2
		for w := range col.Settings {
			p0, p1 := col.Pair(w)
			top := y(p0) - swHeight/2
			bottom := y(p1) + swHeight/2
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999999" stroke-width="0.8"/>`+"\n",
				cx-swWidth/2, top, swWidth, bottom-top)
		}
	}

	// Multicast trees: for each connection, draw its occupied link
	// segments and the diagonal hops through switches.
	sort.Slice(trees, func(i, j int) bool { return trees[i].Source < trees[j].Source })
	for k, tr := range trees {
		color := palette[k%len(palette)]
		occupied := map[int]map[int]bool{} // col -> links
		for _, e := range tr.Edges {
			if occupied[e.Col] == nil {
				occupied[e.Col] = map[int]bool{}
			}
			occupied[e.Col][e.Link] = true
		}
		for _, e := range tr.Edges {
			// Horizontal segment of this wire span.
			fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
				x(e.Col)-colGap/2, y(e.Link), x(e.Col)+colGap/2, y(e.Link), color)
			// Diagonal into the next column's switch output(s).
			next := occupied[e.Col+1]
			if next == nil {
				continue
			}
			if ci := e.Col + 1; ci < len(cols) {
				col := cols[ci]
				w := switchOfLink(col, e.Link)
				p0, p1 := col.Pair(w)
				sx := x(ci) - colGap/2 // the switch column's x position
				for _, out := range []int{p0, p1} {
					if next[out] {
						// Vertical jog inside the switch from the
						// input wire's height to the output wire's.
						fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
							sx, y(e.Link), sx, y(out), color)
					}
				}
			}
		}
		// Input and output labels.
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="monospace" font-size="11" fill="%s">in %d</text>`+"\n",
			8, y(tr.Source)+4, color, tr.Source)
		for _, out := range tr.Outputs {
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="monospace" font-size="11" fill="%s">out %d</text>`+"\n",
				x(len(cols)-1)+colGap/2+4, y(out)+4, color, out)
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// switchOfLink returns the column switch attached to a link.
func switchOfLink(c fabric.Column, link int) int {
	h := c.BlockSize / 2
	b := link / c.BlockSize
	i := link % c.BlockSize
	if i >= h {
		i -= h
	}
	return b*h + i
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
