package svg

import (
	"encoding/xml"
	"math/rand"
	"strings"
	"testing"

	"brsmn/internal/core"
	"brsmn/internal/workload"
)

// TestRenderFig2 renders the paper's example and checks the document is
// well-formed XML containing the expected structural elements.
func TestRenderFig2(t *testing.T) {
	a := workload.PaperFig2()
	res, err := core.Route(a)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render(a, res)
	if err != nil {
		t.Fatal(err)
	}
	// Well-formed XML end to end.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
	for _, want := range []string{
		"<svg", "</svg>",
		"8 x 8 BRSMN",
		">in 0<", ">in 2<", ">in 7<",
		">out 7<", ">out 2<",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// 4 sources get 4 distinct colors.
	colors := map[string]bool{}
	for _, c := range palette[:4] {
		if strings.Contains(out, c) {
			colors[c] = true
		}
	}
	if len(colors) != 4 {
		t.Errorf("expected 4 tree colors, saw %d", len(colors))
	}
}

// TestRenderSizesAndLoads smoke-renders across sizes; the internal
// VerifyAll gate means a successful render implies verified trees.
func TestRenderSizesAndLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(270))
	for _, n := range []int{4, 16, 64} {
		a := workload.Random(rng, n, 0.7, 0.5)
		res, err := core.Route(a)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Render(a, res)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(out, "<svg") {
			t.Fatalf("n=%d: not an SVG", n)
		}
	}
}

// TestXMLEscape covers metadata escaping.
func TestXMLEscape(t *testing.T) {
	if xmlEscape(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Error("escape wrong")
	}
}
