// Package swbox models the 2x2 switching element used throughout the
// multicast network: its four settings (parallel, crossing, upper
// broadcast, lower broadcast) and the legal operations on the four routing
// tag values shown in Fig. 3 and Fig. 7 of Yang & Wang.
package swbox

import (
	"encoding/json"
	"fmt"
	"strconv"

	"brsmn/internal/tag"
)

// Setting is the configuration of a 2x2 switch. The numeric values match
// the r_i encoding of Section 4: 0 parallel, 1 crossing, 2 upper
// broadcast, 3 lower broadcast.
type Setting uint8

const (
	// Parallel connects input 0 to output 0 and input 1 to output 1
	// (Fig. 3a / Fig. 7a).
	Parallel Setting = 0
	// Cross connects input 0 to output 1 and input 1 to output 0
	// (Fig. 3b / Fig. 7b).
	Cross Setting = 1
	// UpperBcast broadcasts input 0 to both outputs (Fig. 3c / Fig. 7c).
	// In tag terms it is legal only for inputs (α, ε) and yields (0, 1).
	UpperBcast Setting = 2
	// LowerBcast broadcasts input 1 to both outputs (Fig. 3d / Fig. 7d).
	// In tag terms it is legal only for inputs (ε, α) and yields (0, 1).
	LowerBcast Setting = 3

	numSettings = 4
)

// NumSettings is the number of switch settings.
const NumSettings = int(numSettings)

// String implements fmt.Stringer.
func (s Setting) String() string {
	switch s {
	case Parallel:
		return "parallel"
	case Cross:
		return "cross"
	case UpperBcast:
		return "ubcast"
	case LowerBcast:
		return "lbcast"
	default:
		return fmt.Sprintf("setting(%d)", uint8(s))
	}
}

// Valid reports whether s is one of the four defined settings.
func (s Setting) Valid() bool { return s < numSettings }

// ParseSetting is the inverse of String, also accepting the numeric r_i
// encoding — the form fault-injection specs and the /faults API use.
func ParseSetting(name string) (Setting, error) {
	switch name {
	case "parallel":
		return Parallel, nil
	case "cross":
		return Cross, nil
	case "ubcast":
		return UpperBcast, nil
	case "lbcast":
		return LowerBcast, nil
	}
	if v, err := strconv.Atoi(name); err == nil && Setting(v).Valid() {
		return Setting(v), nil
	}
	return 0, fmt.Errorf("swbox: unknown setting %q", name)
}

// MarshalJSON encodes the setting by name.
func (s Setting) MarshalJSON() ([]byte, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("swbox: cannot marshal invalid setting %d", uint8(s))
	}
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts a setting name or its numeric encoding.
func (s *Setting) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err == nil {
		v, err := ParseSetting(name)
		if err != nil {
			return err
		}
		*s = v
		return nil
	}
	var num int
	if err := json.Unmarshal(b, &num); err != nil {
		return fmt.Errorf("swbox: setting must be a name or number: %w", err)
	}
	if !Setting(num).Valid() {
		return fmt.Errorf("swbox: setting %d out of range", num)
	}
	*s = Setting(num)
	return nil
}

// IsBroadcast reports whether s duplicates one input to both outputs.
func (s Setting) IsBroadcast() bool { return s == UpperBcast || s == LowerBcast }

// Opposite returns the complementary unicast setting (the paper's b-bar):
// Parallel <-> Cross. It panics on broadcast settings, which have no
// complement.
func (s Setting) Opposite() Setting {
	switch s {
	case Parallel:
		return Cross
	case Cross:
		return Parallel
	}
	panic(fmt.Sprintf("swbox: Opposite of %v", s))
}

// Apply routes two generic items through a switch with setting s. For the
// broadcast settings, split is called on the broadcast source to produce
// the two output copies (the copy destined to output 0 first); the other
// input is discarded. split may be nil if s is a unicast setting.
func Apply[T any](s Setting, in0, in1 T, split func(T) (T, T)) (out0, out1 T) {
	switch s {
	case Parallel:
		return in0, in1
	case Cross:
		return in1, in0
	case UpperBcast:
		return split(in0)
	case LowerBcast:
		return split(in1)
	}
	panic(fmt.Sprintf("swbox: Apply with invalid setting %d", uint8(s)))
}

// SplitTag is the tag transformation performed by a broadcast switch: the
// α on the source input becomes a 0 on output 0 and a 1 on output 1
// (Fig. 3c, 3d).
func SplitTag(v tag.Value) (tag.Value, tag.Value) { return tag.V0, tag.V1 }

// ApplyTags routes two tag values through a switch and enforces the
// legality rules of Fig. 3: unicast settings accept any values and leave
// them unchanged; a broadcast setting requires its source input to be α
// and the discarded input to be ε, and produces (0, 1).
func ApplyTags(s Setting, in0, in1 tag.Value) (out0, out1 tag.Value, err error) {
	switch s {
	case Parallel:
		return in0, in1, nil
	case Cross:
		return in1, in0, nil
	case UpperBcast:
		if in0 != tag.Alpha || !in1.IsEps() {
			return 0, 0, fmt.Errorf("swbox: upper broadcast on inputs (%v, %v); need (α, ε)", in0, in1)
		}
		return tag.V0, tag.V1, nil
	case LowerBcast:
		if in1 != tag.Alpha || !in0.IsEps() {
			return 0, 0, fmt.Errorf("swbox: lower broadcast on inputs (%v, %v); need (ε, α)", in0, in1)
		}
		return tag.V0, tag.V1, nil
	}
	return 0, 0, fmt.Errorf("swbox: invalid setting %d", uint8(s))
}

// Legal reports whether setting s is a legal operation (per Fig. 3) on the
// given input tag values.
func Legal(s Setting, in0, in1 tag.Value) bool {
	_, _, err := ApplyTags(s, in0, in1)
	return err == nil
}
