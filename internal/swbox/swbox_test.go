package swbox

import (
	"testing"

	"brsmn/internal/tag"
)

// TestFig3LegalOps enumerates every (setting, in0, in1) combination over
// the four base tag values and checks legality matches Fig. 3: unicast
// settings always legal with values unchanged; broadcasts legal exactly
// on an (α, ε) pattern and produce (0, 1).
func TestFig3LegalOps(t *testing.T) {
	vals := []tag.Value{tag.V0, tag.V1, tag.Alpha, tag.Eps}
	for _, in0 := range vals {
		for _, in1 := range vals {
			o0, o1, err := ApplyTags(Parallel, in0, in1)
			if err != nil || o0 != in0 || o1 != in1 {
				t.Errorf("parallel(%v,%v) = (%v,%v,%v)", in0, in1, o0, o1, err)
			}
			o0, o1, err = ApplyTags(Cross, in0, in1)
			if err != nil || o0 != in1 || o1 != in0 {
				t.Errorf("cross(%v,%v) = (%v,%v,%v)", in0, in1, o0, o1, err)
			}
			wantUpper := in0 == tag.Alpha && in1.IsEps()
			o0, o1, err = ApplyTags(UpperBcast, in0, in1)
			if (err == nil) != wantUpper {
				t.Errorf("ubcast(%v,%v) legality = %v, want %v", in0, in1, err == nil, wantUpper)
			}
			if err == nil && (o0 != tag.V0 || o1 != tag.V1) {
				t.Errorf("ubcast(%v,%v) = (%v,%v), want (0,1)", in0, in1, o0, o1)
			}
			wantLower := in1 == tag.Alpha && in0.IsEps()
			o0, o1, err = ApplyTags(LowerBcast, in0, in1)
			if (err == nil) != wantLower {
				t.Errorf("lbcast(%v,%v) legality = %v, want %v", in0, in1, err == nil, wantLower)
			}
			if err == nil && (o0 != tag.V0 || o1 != tag.V1) {
				t.Errorf("lbcast(%v,%v) = (%v,%v), want (0,1)", in0, in1, o0, o1)
			}
			if Legal(Parallel, in0, in1) != true {
				t.Error("Legal(parallel) false")
			}
			if Legal(UpperBcast, in0, in1) != wantUpper {
				t.Errorf("Legal(ubcast, %v, %v) = %v", in0, in1, !wantUpper)
			}
		}
	}
}

// TestApplyGeneric checks the generic item routing for all settings.
func TestApplyGeneric(t *testing.T) {
	split := func(s string) (string, string) { return s + "-up", s + "-low" }
	if a, b := Apply(Parallel, "x", "y", nil); a != "x" || b != "y" {
		t.Error("parallel wrong")
	}
	if a, b := Apply(Cross, "x", "y", nil); a != "y" || b != "x" {
		t.Error("cross wrong")
	}
	if a, b := Apply(UpperBcast, "x", "y", split); a != "x-up" || b != "x-low" {
		t.Error("ubcast wrong")
	}
	if a, b := Apply(LowerBcast, "x", "y", split); a != "y-up" || b != "y-low" {
		t.Error("lbcast wrong")
	}
}

// TestSettingHelpers checks Opposite, IsBroadcast, Valid and String.
func TestSettingHelpers(t *testing.T) {
	if Parallel.Opposite() != Cross || Cross.Opposite() != Parallel {
		t.Error("Opposite wrong")
	}
	if Parallel.IsBroadcast() || Cross.IsBroadcast() || !UpperBcast.IsBroadcast() || !LowerBcast.IsBroadcast() {
		t.Error("IsBroadcast wrong")
	}
	names := map[Setting]string{Parallel: "parallel", Cross: "cross", UpperBcast: "ubcast", LowerBcast: "lbcast"}
	for s, want := range names {
		if !s.Valid() || s.String() != want {
			t.Errorf("%d: String = %q, want %q", uint8(s), s.String(), want)
		}
	}
	if Setting(9).Valid() {
		t.Error("Setting(9) Valid")
	}
	defer func() {
		if recover() == nil {
			t.Error("Opposite(UpperBcast) did not panic")
		}
	}()
	UpperBcast.Opposite()
}

// TestSplitTag checks the broadcast tag transformation.
func TestSplitTag(t *testing.T) {
	a, b := SplitTag(tag.Alpha)
	if a != tag.V0 || b != tag.V1 {
		t.Errorf("SplitTag = (%v,%v), want (0,1)", a, b)
	}
}

// TestApplyTagsInvalidSetting checks the error path.
func TestApplyTagsInvalidSetting(t *testing.T) {
	if _, _, err := ApplyTags(Setting(7), tag.V0, tag.V1); err == nil {
		t.Error("ApplyTags accepted invalid setting")
	}
}

// TestEncodingMatchesPaper checks the r_i encoding of Section 4: 0
// parallel, 1 crossing, 2 upper broadcast, 3 lower broadcast — the
// numbering the compact-setting lemmas rely on.
func TestEncodingMatchesPaper(t *testing.T) {
	if Parallel != 0 || Cross != 1 || UpperBcast != 2 || LowerBcast != 3 {
		t.Error("setting encoding diverges from the paper's r_i values")
	}
}
