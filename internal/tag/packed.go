package tag

import (
	"fmt"
	"math/bits"
)

// PackedVec is a word-parallel tag vector: the Table 1 encoding b0 b1 b2
// of every tag, stored as three parallel bitplanes of 64 lanes per word.
// Bit i of B0[i/64] is the b0 bit of tag i, and so on. The planes are the
// software form of the paper's hardware counting circuits (Section 7.2):
// the per-link predicates b0∧¬b1 (α), b0∧b1 (ε) and b2 (one) become
// single AND/ANDN words, and the tree counters of the forward sweeps
// become popcounts.
//
// The encoding of Eps and Eps0 coincides (110 — the paper's don't-care X
// bit), so a packed vector cannot represent the dummy/plain distinction;
// PackInto reports whether the source held dummies so callers that must
// preserve it (the ε-dividing input contract) can reject or re-derive it.
type PackedVec struct {
	N          int
	B0, B1, B2 []uint64
}

// planeBits is the Table 1 encoding b0b1b2 of each value, as three bits
// (b0 = 4, b1 = 2, b2 = 1).
var planeBits = [NumValues]uint8{
	V0:    0b000,
	V1:    0b001,
	Alpha: 0b100,
	Eps:   0b110,
	Eps0:  0b110,
	Eps1:  0b111,
}

// Words returns the number of 64-lane words covering n tags.
func Words(n int) int { return (n + 63) >> 6 }

// Words returns the word count of the packed vector.
func (p *PackedVec) Words() int { return Words(p.N) }

// ensure sizes the planes for n lanes without preserving contents.
func (p *PackedVec) ensure(n int) {
	w := Words(n)
	if cap(p.B0) < w {
		p.B0 = make([]uint64, w)
		p.B1 = make([]uint64, w)
		p.B2 = make([]uint64, w)
	}
	p.B0 = p.B0[:w]
	p.B1 = p.B1[:w]
	p.B2 = p.B2[:w]
	p.N = n
}

// PackInto packs tags into the vector's bitplanes, growing them as
// needed. Lanes past len(tags) in the last word are zero (V0), so ε/α/1
// popcounts over whole words need no tail masking. It reports whether the
// source contained dummy values (Eps0/Eps1), which the planes alone
// cannot distinguish from plain Eps, and fails on the first invalid tag.
func (p *PackedVec) PackInto(tags []Value) (hasDummies bool, err error) {
	p.ensure(len(tags))
	var w0, w1, w2, dummy uint64
	wi := 0
	for i, v := range tags {
		if !v.Valid() {
			return false, fmt.Errorf("tag: packing lane %d: invalid tag %d", i, uint8(v))
		}
		b := uint64(planeBits[v])
		sh := uint(i) & 63
		w0 |= (b >> 2) << sh
		w1 |= (b >> 1 & 1) << sh
		w2 |= (b & 1) << sh
		if v == Eps0 || v == Eps1 {
			dummy = 1
		}
		if sh == 63 {
			p.B0[wi], p.B1[wi], p.B2[wi] = w0, w1, w2
			w0, w1, w2 = 0, 0, 0
			wi++
		}
	}
	if uint(len(tags))&63 != 0 {
		p.B0[wi], p.B1[wi], p.B2[wi] = w0, w1, w2
	}
	return dummy == 1, nil
}

// Pack packs tags into a fresh vector; see PackInto.
func Pack(tags []Value) (*PackedVec, bool, error) {
	p := &PackedVec{}
	dummies, err := p.PackInto(tags)
	if err != nil {
		return nil, false, err
	}
	return p, dummies, nil
}

// At returns the tag in lane i. The (1,1,b2) encodings decode to
// Eps0/Eps1 when dummies is true, and to plain Eps otherwise, exactly
// like Decode.
func (p *PackedVec) At(i int, dummies bool) Value {
	w, sh := i>>6, uint(i)&63
	b := Bits{
		B0: uint8(p.B0[w] >> sh & 1),
		B1: uint8(p.B1[w] >> sh & 1),
		B2: uint8(p.B2[w] >> sh & 1),
	}
	v, err := Decode(b, dummies)
	if err != nil {
		panic(err) // unreachable: every 3-bit pattern a PackInto writes decodes
	}
	return v
}

// UnpackInto writes the vector back as byte tags; dst must have length N.
// See At for the dummies flag.
func (p *PackedVec) UnpackInto(dst []Value, dummies bool) error {
	if len(dst) != p.N {
		return fmt.Errorf("tag: unpacking %d lanes into %d values", p.N, len(dst))
	}
	for i := range dst {
		dst[i] = p.At(i, dummies)
	}
	return nil
}

// AlphaWord returns the α lanes of word w: the predicate b0 ∧ ¬b1.
func (p *PackedVec) AlphaWord(w int) uint64 { return p.B0[w] &^ p.B1[w] }

// EpsWord returns the idle lanes of word w (plain or dummy ε): b0 ∧ b1.
func (p *PackedVec) EpsWord(w int) uint64 { return p.B0[w] & p.B1[w] }

// OneWord returns the real-1 lanes of word w: b2 ∧ ¬b0.
func (p *PackedVec) OneWord(w int) uint64 { return p.B2[w] &^ p.B0[w] }

// SortWord returns the sort-bit lanes of word w — b2, the bit the
// quasisorting pass orders by (real and dummy ones).
func (p *PackedVec) SortWord(w int) uint64 { return p.B2[w] }

// LaneMask returns the valid-lane mask of word w: all ones except in the
// tail of the last word.
func (p *PackedVec) LaneMask(w int) uint64 {
	if r := uint(p.N) & 63; r != 0 && w == p.Words()-1 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

// Counts tallies the four base values over the whole vector with one
// popcount per plane word (dummies count as Eps), mirroring Count.
func (p *PackedVec) Counts() Counts {
	var c Counts
	for w := range p.B0 {
		c.NAlpha += bits.OnesCount64(p.AlphaWord(w))
		c.NEps += bits.OnesCount64(p.EpsWord(w))
		c.N1 += bits.OnesCount64(p.OneWord(w))
	}
	c.N0 = p.N - c.N1 - c.NAlpha - c.NEps
	return c
}
