package tag

import (
	"math/rand"
	"testing"
)

func randTags(rng *rand.Rand, n int, pool []Value) []Value {
	tags := make([]Value, n)
	for i := range tags {
		tags[i] = pool[rng.Intn(len(pool))]
	}
	return tags
}

func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 63, 64, 65, 128, 1000, 1024} {
		for trial := 0; trial < 10; trial++ {
			dummies := trial%2 == 1
			pool := []Value{V0, V1, Alpha, Eps}
			if dummies {
				pool = []Value{V0, V1, Alpha, Eps0, Eps1}
			}
			tags := randTags(rng, n, pool)
			var p PackedVec
			hasDummies, err := p.PackInto(tags)
			if err != nil {
				t.Fatal(err)
			}
			wantDummies := false
			for _, v := range tags {
				if v == Eps0 || v == Eps1 {
					wantDummies = true
				}
			}
			if hasDummies != wantDummies {
				t.Fatalf("n=%d: hasDummies=%v want %v", n, hasDummies, wantDummies)
			}
			got := make([]Value, n)
			if err := p.UnpackInto(got, hasDummies); err != nil {
				t.Fatal(err)
			}
			for i := range tags {
				if got[i] != tags[i] {
					t.Fatalf("n=%d lane %d: round-trip %v want %v", n, i, got[i], tags[i])
				}
				if at := p.At(i, hasDummies); at != tags[i] {
					t.Fatalf("n=%d lane %d: At=%v want %v", n, i, at, tags[i])
				}
			}
		}
	}
}

func TestPackedEpsDummyCollapse(t *testing.T) {
	// Eps and Eps0 share a Table 1 encoding; without the dummies flag the
	// planes decode both to plain Eps.
	var p PackedVec
	if _, err := p.PackInto([]Value{Eps0, Eps, Eps1}); err != nil {
		t.Fatal(err)
	}
	if got := p.At(0, false); got != Eps {
		t.Fatalf("Eps0 without dummies decodes to %v, want ε", got)
	}
	if got := p.At(2, true); got != Eps1 {
		t.Fatalf("Eps1 with dummies decodes to %v", got)
	}
}

func TestPackedCountsMatchCount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pool := []Value{V0, V1, Alpha, Eps, Eps0, Eps1}
	for _, n := range []int{1, 64, 100, 256} {
		tags := randTags(rng, n, pool)
		var p PackedVec
		if _, err := p.PackInto(tags); err != nil {
			t.Fatal(err)
		}
		if got, want := p.Counts(), Count(tags); got != want {
			t.Fatalf("n=%d: packed counts %+v want %+v", n, got, want)
		}
	}
}

func TestPackedRejectsInvalid(t *testing.T) {
	var p PackedVec
	if _, err := p.PackInto([]Value{V0, Value(9)}); err == nil {
		t.Fatal("packing an invalid tag succeeded")
	}
}

func TestPackedClassifyWords(t *testing.T) {
	tags := []Value{V0, V1, Alpha, Eps, Eps0, Eps1, V1, Alpha}
	var p PackedVec
	if _, err := p.PackInto(tags); err != nil {
		t.Fatal(err)
	}
	if got, want := p.AlphaWord(0), uint64(0b10000100); got != want {
		t.Fatalf("AlphaWord %08b want %08b", got, want)
	}
	if got, want := p.EpsWord(0), uint64(0b00111000); got != want {
		t.Fatalf("EpsWord %08b want %08b", got, want)
	}
	if got, want := p.OneWord(0), uint64(0b01000010); got != want {
		t.Fatalf("OneWord %08b want %08b", got, want)
	}
	if got, want := p.SortWord(0), uint64(0b01100010); got != want {
		t.Fatalf("SortWord %08b want %08b", got, want)
	}
	if got, want := p.LaneMask(0), uint64(0xFF); got != want {
		t.Fatalf("LaneMask %x want %x", got, want)
	}
}
