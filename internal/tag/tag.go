// Package tag defines the four-valued routing tags used by the binary
// radix sorting multicast network (BRSMN) of Yang & Wang, plus the two
// "dummy" values introduced by the quasisorting network, and the 3-bit
// hardware encoding of Table 1.
//
// A tag describes, for one level of the network, where the destinations of
// a (possibly split) multicast connection lie relative to the current
// subnetwork's outputs:
//
//	V0    — every destination is in the upper half (bit is 0)
//	V1    — every destination is in the lower half (bit is 1)
//	Alpha — destinations in both halves: the connection must split
//	Eps   — no destinations: the link is idle
//
// The quasisorting network additionally relabels some idle links as dummy
// zeros (Eps0) or dummy ones (Eps1) so that a plain bit-sorting pass can be
// applied (Section 5.2 of the paper).
package tag

import "fmt"

// Value is a routing-tag value.
type Value uint8

const (
	// V0 routes the connection to the upper half of the outputs.
	V0 Value = iota
	// V1 routes the connection to the lower half of the outputs.
	V1
	// Alpha splits the connection to both halves.
	Alpha
	// Eps marks an idle link (empty destination set).
	Eps
	// Eps0 is an idle link relabelled as a dummy 0 by the eps-dividing
	// algorithm of the quasisorting network.
	Eps0
	// Eps1 is an idle link relabelled as a dummy 1.
	Eps1

	numValues
)

// NumValues is the number of distinct tag values (including dummies).
const NumValues = int(numValues)

// String implements fmt.Stringer using the paper's notation.
func (v Value) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	case Alpha:
		return "α"
	case Eps:
		return "ε"
	case Eps0:
		return "ε0"
	case Eps1:
		return "ε1"
	default:
		return fmt.Sprintf("tag(%d)", uint8(v))
	}
}

// Valid reports whether v is one of the six defined tag values.
func (v Value) Valid() bool { return v < numValues }

// IsEps reports whether v is an idle value (Eps, Eps0 or Eps1).
func (v Value) IsEps() bool { return v == Eps || v == Eps0 || v == Eps1 }

// IsChi reports whether v is a "single" routed value in the scatter
// network's combined notation: the paper writes χ for a link holding either
// a 0 or a 1 (Section 5.1).
func (v Value) IsChi() bool { return v == V0 || v == V1 }

// CarriesMessage reports whether a link with this tag carries a message
// (anything except the idle values).
func (v Value) CarriesMessage() bool { return v == V0 || v == V1 || v == Alpha }

// SortBit returns the bit used by the quasisorting network's bit-sorting
// pass: 0 for real or dummy zeros, 1 for real or dummy ones. It is exactly
// bit b2 of the Table 1 encoding. SortBit panics on Alpha and Eps, which
// are never presented to the bit-sorting pass.
func (v Value) SortBit() int {
	switch v {
	case V0, Eps0:
		return 0
	case V1, Eps1:
		return 1
	}
	panic(fmt.Sprintf("tag: SortBit on %v, which has no sort bit", v))
}

// Real maps a dummy value back to Eps and leaves the others untouched.
// After the quasisorting pass, dummy labels carry no message and revert to
// plain idle links.
func (v Value) Real() Value {
	if v == Eps0 || v == Eps1 {
		return Eps
	}
	return v
}

// Bits is the 3-bit encoding b0 b1 b2 of a tag value (Table 1).
type Bits struct {
	B0, B1, B2 uint8
}

// Encode returns the Table 1 encoding of v:
//
//	tag       0    1    α    ε     ε0   ε1
//	b0b1b2   000  001  100  11X   110  111
//
// Plain Eps encodes with b2 = 0 (the X bit is don't-care; hardware treats
// 110 and 111 as idle until the eps-dividing pass fixes b2).
func Encode(v Value) Bits {
	switch v {
	case V0:
		return Bits{0, 0, 0}
	case V1:
		return Bits{0, 0, 1}
	case Alpha:
		return Bits{1, 0, 0}
	case Eps:
		return Bits{1, 1, 0}
	case Eps0:
		return Bits{1, 1, 0}
	case Eps1:
		return Bits{1, 1, 1}
	}
	panic(fmt.Sprintf("tag: Encode on invalid value %d", uint8(v)))
}

// Decode is the inverse of Encode. The pair (1,1,b2) decodes to Eps0/Eps1
// when dummies is true, and to plain Eps otherwise (before the eps-dividing
// pass the b2 bit of an idle link is meaningless).
func Decode(b Bits, dummies bool) (Value, error) {
	switch b {
	case Bits{0, 0, 0}:
		return V0, nil
	case Bits{0, 0, 1}:
		return V1, nil
	case Bits{1, 0, 0}:
		return Alpha, nil
	case Bits{1, 1, 0}:
		if dummies {
			return Eps0, nil
		}
		return Eps, nil
	case Bits{1, 1, 1}:
		if dummies {
			return Eps1, nil
		}
		return Eps, nil
	}
	return 0, fmt.Errorf("tag: no value encodes as %d%d%d", b.B0, b.B1, b.B2)
}

// CountAlphaBit computes the one-bit quantity b0 ∧ ¬b1 used by the
// self-routing circuit to count alphas (Section 7.2).
func (b Bits) CountAlphaBit() uint8 { return b.B0 & (1 - b.B1) }

// CountEpsBit computes the one-bit quantity b0 ∧ b1 used by the
// self-routing circuit to count epsilons (Section 7.2).
func (b Bits) CountEpsBit() uint8 { return b.B0 & b.B1 }

// CountOneBit is the b2 bit, used to count (real and dummy) ones in the
// quasisorting network's forward phase (Section 7.2).
func (b Bits) CountOneBit() uint8 { return b.B2 }

// Counts tallies how many links of a slice hold each of the four base
// values (dummies count as Eps). It mirrors n0, n1, nα, nε of Section 3.
type Counts struct {
	N0, N1, NAlpha, NEps int
}

// Count computes Counts for a slice of tags.
func Count(tags []Value) Counts {
	var c Counts
	for _, v := range tags {
		switch v.Real() {
		case V0:
			c.N0++
		case V1:
			c.N1++
		case Alpha:
			c.NAlpha++
		case Eps:
			c.NEps++
		}
	}
	return c
}

// Total returns n0 + n1 + nα + nε (equation 1 says this equals the number
// of links counted).
func (c Counts) Total() int { return c.N0 + c.N1 + c.NAlpha + c.NEps }

// CheckBSNInput validates the input-side constraints of an n-input binary
// splitting network, equations (1)–(3):
//
//	n0 + n1 + nα + nε = n
//	n0 + nα ≤ n/2   and   n1 + nα ≤ n/2
//	nα ≤ nε   (implied by the above)
func (c Counts) CheckBSNInput(n int) error {
	if c.Total() != n {
		return fmt.Errorf("tag: counts total %d, want n = %d (eq. 1)", c.Total(), n)
	}
	if c.N0+c.NAlpha > n/2 {
		return fmt.Errorf("tag: n0+nα = %d exceeds n/2 = %d (eq. 2)", c.N0+c.NAlpha, n/2)
	}
	if c.N1+c.NAlpha > n/2 {
		return fmt.Errorf("tag: n1+nα = %d exceeds n/2 = %d (eq. 2)", c.N1+c.NAlpha, n/2)
	}
	if c.NAlpha > c.NEps {
		return fmt.Errorf("tag: nα = %d exceeds nε = %d (eq. 3)", c.NAlpha, c.NEps)
	}
	return nil
}

// AfterScatter returns the output-side counts of a scatter network fed with
// counts c, per equation (4): every alpha pairs with an epsilon and the
// pair becomes a 0 and a 1.
func (c Counts) AfterScatter() Counts {
	return Counts{
		N0:     c.N0 + c.NAlpha,
		N1:     c.N1 + c.NAlpha,
		NAlpha: 0,
		NEps:   c.NEps - c.NAlpha,
	}
}

// OtherDirection maps a direction tag to its opposite half: V0 <-> V1.
// It panics on any other value; only direction tags have an opposite.
func (v Value) OtherDirection() Value {
	switch v {
	case V0:
		return V1
	case V1:
		return V0
	}
	panic(fmt.Sprintf("tag: OtherDirection of %v", v))
}
