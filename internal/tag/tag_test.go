package tag

import "testing"

// TestTable1Encoding checks the exact encoding of Table 1.
func TestTable1Encoding(t *testing.T) {
	want := map[Value]Bits{
		V0:    {0, 0, 0},
		V1:    {0, 0, 1},
		Alpha: {1, 0, 0},
		Eps:   {1, 1, 0},
		Eps0:  {1, 1, 0},
		Eps1:  {1, 1, 1},
	}
	for v, b := range want {
		if got := Encode(v); got != b {
			t.Errorf("Encode(%v) = %v, want %v", v, got, b)
		}
	}
}

// TestDecodeRoundTrip checks Decode inverts Encode in both dummy modes.
func TestDecodeRoundTrip(t *testing.T) {
	for _, v := range []Value{V0, V1, Alpha, Eps} {
		got, err := Decode(Encode(v), false)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", v, err)
		}
		if got != v {
			t.Errorf("Decode(Encode(%v)) = %v", v, got)
		}
	}
	for _, v := range []Value{V0, V1, Alpha, Eps0, Eps1} {
		got, err := Decode(Encode(v), true)
		if err != nil {
			t.Fatalf("Decode(Encode(%v), dummies): %v", v, err)
		}
		if got != v {
			t.Errorf("Decode(Encode(%v), dummies) = %v", v, got)
		}
	}
	if _, err := Decode(Bits{0, 1, 0}, false); err == nil {
		t.Error("Decode accepted the unused code 010")
	}
	if _, err := Decode(Bits{1, 0, 1}, false); err == nil {
		t.Error("Decode accepted the unused code 101")
	}
}

// TestCountingBits checks the circuit-level counting predicates of
// Section 7.2: b0∧¬b1 counts αs, b0∧b1 counts εs, b2 counts (real or
// dummy) ones.
func TestCountingBits(t *testing.T) {
	for _, v := range []Value{V0, V1, Alpha, Eps, Eps0, Eps1} {
		b := Encode(v)
		if got, want := b.CountAlphaBit() == 1, v == Alpha; got != want {
			t.Errorf("%v: CountAlphaBit = %v, want %v", v, got, want)
		}
		if got, want := b.CountEpsBit() == 1, v.IsEps(); got != want {
			t.Errorf("%v: CountEpsBit = %v, want %v", v, got, want)
		}
	}
	if Encode(V1).CountOneBit() != 1 || Encode(Eps1).CountOneBit() != 1 {
		t.Error("CountOneBit must be 1 for V1 and Eps1")
	}
	if Encode(V0).CountOneBit() != 0 || Encode(Eps0).CountOneBit() != 0 {
		t.Error("CountOneBit must be 0 for V0 and Eps0")
	}
}

// TestPredicates exercises the value predicates.
func TestPredicates(t *testing.T) {
	cases := []struct {
		v             Value
		eps, chi, msg bool
	}{
		{V0, false, true, true},
		{V1, false, true, true},
		{Alpha, false, false, true},
		{Eps, true, false, false},
		{Eps0, true, false, false},
		{Eps1, true, false, false},
	}
	for _, c := range cases {
		if c.v.IsEps() != c.eps || c.v.IsChi() != c.chi || c.v.CarriesMessage() != c.msg {
			t.Errorf("%v: predicates (eps=%v chi=%v msg=%v), want (%v %v %v)",
				c.v, c.v.IsEps(), c.v.IsChi(), c.v.CarriesMessage(), c.eps, c.chi, c.msg)
		}
		if !c.v.Valid() {
			t.Errorf("%v not Valid", c.v)
		}
	}
	if Value(17).Valid() {
		t.Error("Value(17) reported Valid")
	}
}

// TestSortBit checks the quasisorting bit and its panics.
func TestSortBit(t *testing.T) {
	if V0.SortBit() != 0 || Eps0.SortBit() != 0 || V1.SortBit() != 1 || Eps1.SortBit() != 1 {
		t.Error("SortBit values wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("SortBit(Alpha) did not panic")
		}
	}()
	Alpha.SortBit()
}

// TestReal checks dummy reversion.
func TestReal(t *testing.T) {
	if Eps0.Real() != Eps || Eps1.Real() != Eps || V0.Real() != V0 || Alpha.Real() != Alpha {
		t.Error("Real() mapping wrong")
	}
}

// TestCounts checks Count, Total and the BSN input constraints.
func TestCounts(t *testing.T) {
	tags := []Value{V0, V1, Alpha, Eps, Eps0, Eps1, V0, Eps}
	c := Count(tags)
	want := Counts{N0: 2, N1: 1, NAlpha: 1, NEps: 4}
	if c != want {
		t.Fatalf("Count = %+v, want %+v", c, want)
	}
	if c.Total() != 8 {
		t.Fatalf("Total = %d, want 8", c.Total())
	}
	if err := c.CheckBSNInput(8); err != nil {
		t.Fatalf("CheckBSNInput: %v", err)
	}
	if err := c.CheckBSNInput(16); err == nil {
		t.Error("CheckBSNInput accepted wrong total")
	}
	bad := Counts{N0: 3, N1: 0, NAlpha: 0, NEps: 1}
	if err := bad.CheckBSNInput(4); err == nil {
		t.Error("CheckBSNInput accepted n0 > n/2")
	}
	bad = Counts{N0: 0, N1: 1, NAlpha: 2, NEps: 1}
	if err := bad.CheckBSNInput(4); err == nil {
		t.Error("CheckBSNInput accepted n1+nα > n/2")
	}
	// nα <= nε (eq. 3) is implied by eqs. 1–2, so any counts passing the
	// half bounds also pass it: verify the α/ε check never fires alone.
	ok := Counts{N0: 0, N1: 0, NAlpha: 2, NEps: 2}
	if err := ok.CheckBSNInput(4); err != nil {
		t.Errorf("CheckBSNInput rejected legal counts: %v", err)
	}
}

// TestAfterScatter checks the equation (4) transformation.
func TestAfterScatter(t *testing.T) {
	c := Counts{N0: 1, N1: 2, NAlpha: 3, NEps: 10}
	got := c.AfterScatter()
	want := Counts{N0: 4, N1: 5, NAlpha: 0, NEps: 7}
	if got != want {
		t.Fatalf("AfterScatter = %+v, want %+v", got, want)
	}
}

// TestStrings pins the display notation.
func TestStrings(t *testing.T) {
	pairs := map[Value]string{V0: "0", V1: "1", Alpha: "α", Eps: "ε", Eps0: "ε0", Eps1: "ε1"}
	for v, s := range pairs {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", uint8(v), v.String(), s)
		}
	}
}
