// Package vectors generates and checks conformance test vectors for the
// self-routing multicast network: machine-readable records pairing a
// multicast assignment with its routing-tag sequences, its deliveries,
// and the exact switch-column program the distributed algorithms
// compute (plancodec format, base64). A vectors file pins the network's
// observable behavior across versions — and gives an independent
// implementation (another language, an RTL model, silicon) something
// concrete to conform to.
package vectors

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math/rand"

	"brsmn/internal/bsn"
	"brsmn/internal/core"
	"brsmn/internal/fabric"
	"brsmn/internal/mcast"
	"brsmn/internal/plancodec"
	"brsmn/internal/workload"
)

// Vector is one conformance record.
type Vector struct {
	N     int     `json:"n"`
	Dests [][]int `json:"dests"`
	// Sequences[i] is input i's routing-tag sequence in the paper's
	// compact notation ("" for idle inputs).
	Sequences []string `json:"sequences"`
	// Deliveries[out] is the source delivered at each output (-1 idle).
	Deliveries []int `json:"deliveries"`
	// Plan is the flattened switch-column program, plancodec-encoded
	// then base64.
	Plan string `json:"plan"`
}

// File is the on-disk shape.
type File struct {
	Format  string   `json:"format"`
	Version int      `json:"version"`
	Vectors []Vector `json:"vectors"`
}

// FormatName identifies the vector file format.
const FormatName = "brsmn-conformance"

// Generate produces count vectors for each listed size: the paper's
// Fig. 2 example first (when n = 8 is listed), then a full broadcast,
// then deterministic pseudo-random assignments from the seed.
func Generate(sizes []int, count int, seed int64) (*File, error) {
	rng := rand.New(rand.NewSource(seed))
	f := &File{Format: FormatName, Version: 1}
	for _, n := range sizes {
		var as []mcast.Assignment
		if n == 8 {
			as = append(as, workload.PaperFig2())
		}
		b, err := mcast.Broadcast(n, rng.Intn(n))
		if err != nil {
			return nil, err
		}
		as = append(as, b)
		for len(as) < count {
			as = append(as, workload.Random(rng, n, rng.Float64(), rng.Float64()))
		}
		for _, a := range as {
			v, err := vectorOf(a)
			if err != nil {
				return nil, err
			}
			f.Vectors = append(f.Vectors, *v)
		}
	}
	return f, nil
}

func vectorOf(a mcast.Assignment) (*Vector, error) {
	res, err := core.Route(a)
	if err != nil {
		return nil, err
	}
	cols, err := fabric.Flatten(res)
	if err != nil {
		return nil, err
	}
	blob, err := plancodec.Encode(a.N, cols)
	if err != nil {
		return nil, err
	}
	v := &Vector{
		N:          a.N,
		Dests:      a.Dests,
		Sequences:  make([]string, a.N),
		Deliveries: make([]int, a.N),
		Plan:       base64.StdEncoding.EncodeToString(blob),
	}
	seqs, err := a.Sequences()
	if err != nil {
		return nil, err
	}
	for i := range seqs {
		if len(a.Dests[i]) > 0 {
			v.Sequences[i] = mcast.FormatSequence(seqs[i])
		}
	}
	for out, d := range res.Deliveries {
		v.Deliveries[out] = d.Source
	}
	return v, nil
}

// Check re-derives every vector from its assignment and compares all
// recorded fields; it also replays the recorded plan through the fabric
// and requires the recorded deliveries. It returns the number of vectors
// checked.
func Check(f *File) (int, error) {
	if f.Format != FormatName {
		return 0, fmt.Errorf("vectors: format %q, want %q", f.Format, FormatName)
	}
	if f.Version != 1 {
		return 0, fmt.Errorf("vectors: unsupported version %d", f.Version)
	}
	for k, v := range f.Vectors {
		if len(v.Sequences) != v.N || len(v.Deliveries) != v.N {
			return k, fmt.Errorf("vectors: #%d: field widths (%d sequences, %d deliveries) do not match n = %d",
				k, len(v.Sequences), len(v.Deliveries), v.N)
		}
		a, err := mcast.New(v.N, v.Dests)
		if err != nil {
			return k, fmt.Errorf("vectors: #%d: %w", k, err)
		}
		fresh, err := vectorOf(a)
		if err != nil {
			return k, fmt.Errorf("vectors: #%d: %w", k, err)
		}
		for i := range v.Sequences {
			if fresh.Sequences[i] != v.Sequences[i] {
				return k, fmt.Errorf("vectors: #%d input %d: sequence %q, recorded %q",
					k, i, fresh.Sequences[i], v.Sequences[i])
			}
		}
		for out := range v.Deliveries {
			if fresh.Deliveries[out] != v.Deliveries[out] {
				return k, fmt.Errorf("vectors: #%d output %d: delivery %d, recorded %d",
					k, out, fresh.Deliveries[out], v.Deliveries[out])
			}
		}
		if fresh.Plan != v.Plan {
			return k, fmt.Errorf("vectors: #%d: switch plan drifted from the recorded bytes", k)
		}
		// Independent replay of the recorded plan.
		blob, err := base64.StdEncoding.DecodeString(v.Plan)
		if err != nil {
			return k, fmt.Errorf("vectors: #%d: %w", k, err)
		}
		n, cols, err := plancodec.Decode(blob)
		if err != nil || n != v.N {
			return k, fmt.Errorf("vectors: #%d: plan decode: %v", k, err)
		}
		cells, err := bsn.CellsForAssignment(a)
		if err != nil {
			return k, err
		}
		final, err := fabric.Run(cols, cells)
		if err != nil {
			return k, fmt.Errorf("vectors: #%d: replay: %w", k, err)
		}
		for p, c := range final {
			got := -1
			if !c.IsIdle() {
				got = c.Source
			}
			if got != v.Deliveries[p] {
				return k, fmt.Errorf("vectors: #%d: replay output %d = %d, recorded %d", k, p, got, v.Deliveries[p])
			}
		}
	}
	return len(f.Vectors), nil
}

// Marshal renders the file as indented JSON.
func Marshal(f *File) ([]byte, error) {
	return json.MarshalIndent(f, "", " ")
}

// Unmarshal parses a vectors file.
func Unmarshal(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("vectors: %w", err)
	}
	return &f, nil
}
