package vectors

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateCheckRoundTrip generates vectors and immediately checks
// them, through the JSON round trip.
func TestGenerateCheckRoundTrip(t *testing.T) {
	f, err := Generate([]int{4, 8, 32}, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Vectors) != 3*6 { // count per size (Fig. 2 and a broadcast lead n=8's)
		t.Fatalf("%d vectors", len(f.Vectors))
	}
	raw, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Check(back)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(f.Vectors) {
		t.Fatalf("checked %d of %d", n, len(f.Vectors))
	}
}

// TestCheckCatchesTampering corrupts each field class and expects Check
// to fail.
func TestCheckCatchesTampering(t *testing.T) {
	fresh := func() *File {
		f, err := Generate([]int{8}, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f := fresh()
	f.Vectors[0].Deliveries[0] = 99
	if _, err := Check(f); err == nil {
		t.Error("tampered delivery accepted")
	}
	f = fresh()
	f.Vectors[1].Sequences[0] = "ε"
	if _, err := Check(f); err == nil {
		t.Error("tampered sequence accepted")
	}
	f = fresh()
	f.Vectors[0].Plan = f.Vectors[0].Plan[:len(f.Vectors[0].Plan)-8] + "AAAAAAA="
	if _, err := Check(f); err == nil {
		t.Error("tampered plan accepted")
	}
	f = fresh()
	f.Format = "other"
	if _, err := Check(f); err == nil {
		t.Error("wrong format accepted")
	}
	f = fresh()
	f.Version = 9
	if _, err := Check(f); err == nil {
		t.Error("wrong version accepted")
	}
	f = fresh()
	f.Vectors[0].Dests = [][]int{{0}, {0}}
	if _, err := Check(f); err == nil {
		t.Error("invalid assignment accepted")
	}
	if _, err := Unmarshal([]byte("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
}

// TestCommittedVectorsStillConform checks the repository's committed
// conformance file against the current implementation.
func TestCommittedVectorsStillConform(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "conformance.json"))
	if err != nil {
		t.Fatalf("missing committed vectors (regenerate with cmd/brsmnvectors): %v", err)
	}
	f, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if n < 20 {
		t.Fatalf("only %d committed vectors", n)
	}
}
