package workload

import (
	"testing"

	"brsmn/internal/core"
	"brsmn/internal/cost"
	"brsmn/internal/paths"
)

// TestProbesCoverEverySwitch asserts the advertised coverage property
// via internal/paths: for each probe, the union of its extracted tree
// edges occupies every link of every switch column, so every physical
// switch (both the one driving and the one consuming each link) is
// exercised by every single probe.
func TestProbesCoverEverySwitch(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		probes, err := Probes(n, 3)
		if err != nil {
			t.Fatal(err)
		}
		depth := cost.BRSMNDepth(n)
		for pi, a := range probes {
			res, err := core.Route(a)
			if err != nil {
				t.Fatalf("n=%d probe %d: %v", n, pi, err)
			}
			trees, err := paths.VerifyAll(a, res)
			if err != nil {
				t.Fatalf("n=%d probe %d: %v", n, pi, err)
			}
			covered := make([]map[int]bool, depth)
			for ci := range covered {
				covered[ci] = map[int]bool{}
			}
			for _, tr := range trees {
				for _, e := range tr.Edges {
					if e.Col >= 0 {
						covered[e.Col][e.Link] = true
					}
				}
			}
			for ci := range covered {
				if len(covered[ci]) != n {
					t.Fatalf("n=%d probe %d: column %d carries %d of %d links",
						n, pi, ci, len(covered[ci]), n)
				}
			}
		}
	}
}

// TestProbesDeterministicAndDistinct pins determinism (same inputs,
// same probes) and that successive probes use different permutations.
func TestProbesDeterministicAndDistinct(t *testing.T) {
	a, err := Probes(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Probes(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		for i := range a[j].Dests {
			if a[j].Dests[i][0] != b[j].Dests[i][0] {
				t.Fatal("Probes is not deterministic")
			}
		}
		if j > 0 && a[j].Dests[0][0] == a[j-1].Dests[0][0] {
			t.Fatalf("probes %d and %d use the same mask", j-1, j)
		}
	}
	if _, err := Probes(6, 1); err == nil {
		t.Error("accepted non-power-of-two size")
	}
	if _, err := Probes(8, 0); err == nil {
		t.Error("accepted zero probes")
	}
}
