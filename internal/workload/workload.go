// Package workload generates multicast assignments for tests, examples
// and benchmarks: uniform random multicast traffic, (partial)
// permutations, broadcasts, hot spots and adversarial maximum-split
// patterns. All generators produce valid assignments (pairwise-disjoint
// destination sets) by construction.
package workload

import (
	"fmt"
	"math/rand"

	"brsmn/internal/mcast"
)

// Random draws a multicast assignment in which a `load` fraction of the n
// outputs (rounded) receive traffic, destinations are assigned to active
// inputs uniformly at random, and roughly `activeFrac` of the inputs are
// active. load and activeFrac are clamped to [0, 1]; an activeFrac of 0
// still yields at least one active input when load > 0.
func Random(rng *rand.Rand, n int, load, activeFrac float64) mcast.Assignment {
	load = clamp01(load)
	activeFrac = clamp01(activeFrac)
	k := int(load*float64(n) + 0.5)
	if k > n {
		k = n
	}
	numActive := int(activeFrac*float64(n) + 0.5)
	if numActive < 1 && k > 0 {
		numActive = 1
	}
	if numActive > n {
		numActive = n
	}
	dests := make([][]int, n)
	if k == 0 || numActive == 0 {
		return mcast.MustNew(n, dests)
	}
	active := rng.Perm(n)[:numActive]
	outs := rng.Perm(n)[:k]
	for _, o := range outs {
		in := active[rng.Intn(numActive)]
		dests[in] = append(dests[in], o)
	}
	return mcast.MustNew(n, dests)
}

// Permutation draws a full random permutation assignment.
func Permutation(rng *rand.Rand, n int) mcast.Assignment {
	p := rng.Perm(n)
	a, err := mcast.Permutation(p)
	if err != nil {
		panic(err) // a permutation of [0,n) is always valid
	}
	return a
}

// PartialPermutation draws a permutation assignment in which each input
// is active with probability load.
func PartialPermutation(rng *rand.Rand, n int, load float64) mcast.Assignment {
	load = clamp01(load)
	p := rng.Perm(n)
	vec := make([]int, n)
	for i := range vec {
		if rng.Float64() < load {
			vec[i] = p[i]
		} else {
			vec[i] = -1
		}
	}
	a, err := mcast.Permutation(vec)
	if err != nil {
		panic(err)
	}
	return a
}

// Broadcast returns the assignment in which input src multicasts to all n
// outputs — the maximal single multicast tree.
func Broadcast(n, src int) mcast.Assignment {
	a, err := mcast.Broadcast(n, src)
	if err != nil {
		panic(err)
	}
	return a
}

// HotSpot gives one randomly chosen input a fanout of `hot` random
// outputs and spreads the remaining outputs as unicasts over the other
// inputs with probability load.
func HotSpot(rng *rand.Rand, n, hot int, load float64) mcast.Assignment {
	if hot > n {
		hot = n
	}
	load = clamp01(load)
	dests := make([][]int, n)
	outs := rng.Perm(n)
	src := rng.Intn(n)
	dests[src] = append(dests[src], outs[:hot]...)
	rest := outs[hot:]
	inputs := rng.Perm(n)
	ii := 0
	for _, o := range rest {
		if rng.Float64() >= load {
			continue
		}
		for ii < len(inputs) && inputs[ii] == src {
			ii++
		}
		if ii >= len(inputs) {
			break
		}
		dests[inputs[ii]] = append(dests[inputs[ii]], o)
		ii++
	}
	return mcast.MustNew(n, dests)
}

// MaxSplit builds the adversarial assignment that forces the largest
// number of α splits: `groups` active inputs, each multicasting to a
// maximally spread (stride-`groups`) destination comb, so every
// connection splits at every level until the final log2(groups) levels.
// groups must be a power of two dividing n.
func MaxSplit(n, groups int) (mcast.Assignment, error) {
	if groups <= 0 || groups > n || n%groups != 0 || groups&(groups-1) != 0 {
		return mcast.Assignment{}, fmt.Errorf("workload: groups = %d must be a power of two dividing n = %d", groups, n)
	}
	dests := make([][]int, n)
	for g := 0; g < groups; g++ {
		for d := g; d < n; d += groups {
			dests[g] = append(dests[g], d)
		}
	}
	return mcast.New(n, dests)
}

// EvenFanout gives each of the first n/f inputs a contiguous block of f
// destinations — a split-light counterpart to MaxSplit with the same
// total fanout. f must divide n.
func EvenFanout(n, f int) (mcast.Assignment, error) {
	if f <= 0 || n%f != 0 {
		return mcast.Assignment{}, fmt.Errorf("workload: fanout %d must divide n = %d", f, n)
	}
	dests := make([][]int, n)
	for i := 0; i < n/f; i++ {
		for d := i * f; d < (i+1)*f; d++ {
			dests[i] = append(dests[i], d)
		}
	}
	return mcast.New(n, dests)
}

// Probes returns k small deterministic built-in self-test assignments
// with a known full-coverage property: probe j is the full XOR
// permutation i -> i ^ mask_j (mask_j cycling over 1..n-1), so all n
// inputs are active and — the fabric being edge-disjoint and
// single-writer — every link of every switch column carries a live cell
// in every probe. Every physical switch is therefore exercised by every
// probe, while successive masks vary the computed settings so a
// stuck-at switch disagrees with some probe's plan. The assignments are
// unicast (fanout 1 each), making probes the cheapest traffic that
// still sweeps the whole fabric — what internal/faultd piggybacks
// between serving epochs.
func Probes(n, k int) ([]mcast.Assignment, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("workload: probe size %d is not a power of two >= 2", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("workload: need at least one probe, got %d", k)
	}
	out := make([]mcast.Assignment, k)
	for j := 0; j < k; j++ {
		mask := j%(n-1) + 1 // never 0: identity leaves settings degenerate
		dests := make([][]int, n)
		for i := 0; i < n; i++ {
			dests[i] = []int{i ^ mask}
		}
		out[j] = mcast.MustNew(n, dests)
	}
	return out, nil
}

// PaperFig2 returns the 8x8 example assignment of Fig. 2 of the paper:
// {{0,1}, ∅, {3,4,7}, {2}, ∅, ∅, ∅, {5,6}}.
func PaperFig2() mcast.Assignment {
	return mcast.MustNew(8, [][]int{
		{0, 1}, nil, {3, 4, 7}, {2}, nil, nil, nil, {5, 6},
	})
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ZipfFanout draws a multicast assignment whose per-source fanouts
// follow a Zipf-like heavy tail (exponent s > 1): most multicasts are
// small, a few are large — the fanout profile measured in real multicast
// traffic. Destination sets stay disjoint; generation stops when the
// outputs are exhausted.
func ZipfFanout(rng *rand.Rand, n int, s float64, load float64) mcast.Assignment {
	if s <= 1 {
		s = 1.1
	}
	load = clamp01(load)
	budget := int(load*float64(n) + 0.5)
	outs := rng.Perm(n)
	inputs := rng.Perm(n)
	dests := make([][]int, n)
	zipf := rand.NewZipf(rng, s, 1, uint64(n-1))
	used := 0
	for _, in := range inputs {
		if used >= budget {
			break
		}
		f := int(zipf.Uint64()) + 1
		if used+f > budget {
			f = budget - used
		}
		dests[in] = append([]int(nil), outs[used:used+f]...)
		used += f
	}
	return mcast.MustNew(n, dests)
}

// Bursty draws a sequence of assignments with on/off arrival phases: in
// an "on" phase the load is high, in an "off" phase near zero — the
// batch form used to stress schedulers and pipelines.
func Bursty(rng *rand.Rand, n, count int, onLoad, offLoad float64, phase int) []mcast.Assignment {
	if phase < 1 {
		phase = 1
	}
	out := make([]mcast.Assignment, count)
	for i := range out {
		load := offLoad
		if (i/phase)%2 == 0 {
			load = onLoad
		}
		out[i] = Random(rng, n, load, 0.6)
	}
	return out
}
