package workload

import (
	"math/rand"
	"testing"
)

// TestRandomValidAndLoaded checks validity and approximate load.
func TestRandomValidAndLoaded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 8, 64, 512} {
		for _, load := range []float64{0, 0.25, 0.5, 1.0} {
			a := Random(rng, n, load, 0.5)
			if err := a.Validate(); err != nil {
				t.Fatalf("n=%d load=%v: %v", n, load, err)
			}
			want := int(load*float64(n) + 0.5)
			if a.Fanout() != want {
				t.Errorf("n=%d load=%v: fanout %d, want %d", n, load, a.Fanout(), want)
			}
		}
	}
	// Out-of-range load clamps.
	a := Random(rng, 8, 3.0, -1)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Fanout() != 8 {
		t.Errorf("clamped load fanout %d, want 8", a.Fanout())
	}
}

// TestPermutationGenerators checks full and partial permutations.
func TestPermutationGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Permutation(rng, 64)
	if !a.IsPermutation() || a.Fanout() != 64 {
		t.Error("Permutation not full")
	}
	p := PartialPermutation(rng, 64, 0.5)
	if !p.IsPermutation() {
		t.Error("PartialPermutation not a permutation")
	}
	if p.Fanout() == 0 || p.Fanout() == 64 {
		t.Logf("unusual partial fanout %d (possible but unlikely)", p.Fanout())
	}
}

// TestBroadcastGenerator checks the full-fanout assignment.
func TestBroadcastGenerator(t *testing.T) {
	a := Broadcast(16, 3)
	if a.Fanout() != 16 || len(a.Dests[3]) != 16 {
		t.Error("Broadcast wrong")
	}
}

// TestHotSpot checks the hot input receives the requested fanout.
func TestHotSpot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := HotSpot(rng, 64, 16, 0.5)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	maxFan := 0
	for _, ds := range a.Dests {
		if len(ds) > maxFan {
			maxFan = len(ds)
		}
	}
	if maxFan != 16 {
		t.Errorf("hot fanout %d, want 16", maxFan)
	}
	// hot > n clamps.
	b := HotSpot(rng, 8, 100, 0)
	if b.Fanout() != 8 {
		t.Errorf("clamped hot fanout %d, want 8", b.Fanout())
	}
}

// TestMaxSplit checks the adversarial comb structure and validation.
func TestMaxSplit(t *testing.T) {
	a, err := MaxSplit(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		if len(a.Dests[g]) != 4 {
			t.Errorf("group %d fanout %d, want 4", g, len(a.Dests[g]))
		}
		for k, d := range a.Dests[g] {
			if d != g+4*k {
				t.Errorf("group %d dest %d = %d, want %d", g, k, d, g+4*k)
			}
		}
	}
	for _, bad := range [][2]int{{16, 3}, {16, 0}, {16, 32}, {12, 4}} {
		if _, err := MaxSplit(bad[0], bad[1]); err == nil {
			t.Errorf("MaxSplit(%d,%d) succeeded", bad[0], bad[1])
		}
	}
}

// TestEvenFanout checks the contiguous-block generator.
func TestEvenFanout(t *testing.T) {
	a, err := EvenFanout(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fanout() != 16 || len(a.Dests[0]) != 4 || a.Dests[1][0] != 4 {
		t.Error("EvenFanout structure wrong")
	}
	if _, err := EvenFanout(16, 3); err == nil {
		t.Error("EvenFanout accepted non-dividing fanout")
	}
}

// TestPaperFig2 pins the running example.
func TestPaperFig2(t *testing.T) {
	a := PaperFig2()
	if a.String() != "{{0,1}, ∅, {3,4,7}, {2}, ∅, ∅, ∅, {5,6}}" {
		t.Errorf("PaperFig2 = %v", a)
	}
}

// TestZipfFanout checks validity, the load budget, and the heavy tail.
func TestZipfFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{16, 64, 256} {
		a := ZipfFanout(rng, n, 1.5, 1.0)
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		if a.Fanout() != n {
			t.Errorf("n=%d: fanout %d, want %d", n, a.Fanout(), n)
		}
	}
	// Heavy tail: across many draws, some multicast exceeds 4x the mean.
	sawBig := false
	for trial := 0; trial < 50 && !sawBig; trial++ {
		a := ZipfFanout(rng, 128, 1.2, 1.0)
		for _, ds := range a.Dests {
			if len(ds) >= 16 {
				sawBig = true
			}
		}
	}
	if !sawBig {
		t.Error("no heavy-tail fanout observed in 50 draws")
	}
	// Degenerate exponent clamps.
	if a := ZipfFanout(rng, 16, 0.5, 0.5); a.Validate() != nil {
		t.Error("clamped exponent invalid")
	}
}

// TestBursty checks the phase structure.
func TestBursty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	batch := Bursty(rng, 64, 8, 0.9, 0.05, 2)
	if len(batch) != 8 {
		t.Fatalf("%d assignments", len(batch))
	}
	onFan := batch[0].Fanout() + batch[1].Fanout()
	offFan := batch[2].Fanout() + batch[3].Fanout()
	if onFan <= offFan {
		t.Errorf("on-phase fanout %d not above off-phase %d", onFan, offFan)
	}
	if b := Bursty(rng, 16, 3, 1, 0, 0); len(b) != 3 {
		t.Error("phase clamp wrong")
	}
}
