// Package xbar implements an n x n crossbar multicast switch: the trivial
// O(n^2)-cost, O(1)-depth baseline and the correctness oracle for every
// other network in this repository. Each output has an n-way selector; a
// multicast assignment is realized by pointing each requested output's
// selector at its source input.
package xbar

import (
	"fmt"

	"brsmn/internal/mcast"
)

// Crossbar is an n x n crossbar. The zero value is unusable; use New.
type Crossbar struct {
	n int
	// sel[out] is the input selected by output out, or -1.
	sel []int
}

// New returns an n x n crossbar (any n >= 1; the crossbar does not need a
// power-of-two size, but the rest of the repository uses one).
func New(n int) (*Crossbar, error) {
	if n < 1 {
		return nil, fmt.Errorf("xbar: size %d out of range", n)
	}
	sel := make([]int, n)
	for i := range sel {
		sel[i] = -1
	}
	return &Crossbar{n: n, sel: sel}, nil
}

// N returns the crossbar size.
func (x *Crossbar) N() int { return x.n }

// Configure points the output selectors at the assignment's sources.
func (x *Crossbar) Configure(a mcast.Assignment) error {
	if a.N != x.n {
		return fmt.Errorf("xbar: assignment for %d ports on a %d x %d crossbar", a.N, x.n, x.n)
	}
	if err := a.Validate(); err != nil {
		return err
	}
	copy(x.sel, a.OutputOwner())
	return nil
}

// Apply delivers the input payloads to the configured outputs; outputs
// with no selected input receive the zero value.
func Apply[T any](x *Crossbar, in []T) ([]T, error) {
	if len(in) != x.n {
		return nil, fmt.Errorf("xbar: %d inputs for a %d x %d crossbar", len(in), x.n, x.n)
	}
	out := make([]T, x.n)
	for o, s := range x.sel {
		if s >= 0 {
			out[o] = in[s]
		}
	}
	return out, nil
}

// Route configures and applies in one step, returning the source feeding
// each output (-1 for idle outputs) — the oracle interface.
func (x *Crossbar) Route(a mcast.Assignment) ([]int, error) {
	if err := x.Configure(a); err != nil {
		return nil, err
	}
	return append([]int(nil), x.sel...), nil
}

// Crosspoints returns the hardware cost of the crossbar: n^2 crosspoints.
func (x *Crossbar) Crosspoints() int { return x.n * x.n }
