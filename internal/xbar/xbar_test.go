package xbar

import (
	"math/rand"
	"testing"

	"brsmn/internal/workload"
)

// TestRouteMatchesAssignment checks the oracle against the assignment's
// own owner map (they are definitionally equal — this pins the API).
func TestRouteMatchesAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 8, 64} {
		xb, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			a := workload.Random(rng, n, rng.Float64(), rng.Float64())
			got, err := xb.Route(a)
			if err != nil {
				t.Fatal(err)
			}
			want := a.OutputOwner()
			for out := range want {
				if got[out] != want[out] {
					t.Fatalf("output %d: %d, want %d", out, got[out], want[out])
				}
			}
		}
	}
}

// TestApplyPayloads checks payload fanout.
func TestApplyPayloads(t *testing.T) {
	xb, _ := New(4)
	a := workload.Broadcast(4, 2)
	if err := xb.Configure(a); err != nil {
		t.Fatal(err)
	}
	out, err := Apply(xb, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if s != "c" {
			t.Errorf("output %d = %q", i, s)
		}
	}
	if _, err := Apply(xb, []string{"a"}); err == nil {
		t.Error("Apply accepted wrong width")
	}
}

// TestValidation checks error paths and cost.
func TestValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) succeeded")
	}
	xb, _ := New(4)
	if err := xb.Configure(workload.Broadcast(8, 0)); err == nil {
		t.Error("Configure accepted wrong size")
	}
	if xb.Crosspoints() != 16 || xb.N() != 4 {
		t.Error("accessors wrong")
	}
}
