package brsmn

import "fmt"

// PaddedNetwork adapts the BRSMN to any port count: a p-port switch is
// embedded in the next power-of-two network, with the extra ports
// permanently idle. The paper's construction requires n = 2^m; padding
// is the standard deployment answer, costing at most a factor-2 size
// overshoot.
type PaddedNetwork struct {
	inner *Network
	ports int
}

// NewPadded returns a multicast network with exactly `ports` usable
// ports (ports >= 2).
func NewPadded(ports int, opts ...Option) (*PaddedNetwork, error) {
	if ports < 2 {
		return nil, fmt.Errorf("brsmn: %d ports out of range", ports)
	}
	n := 2
	for n < ports {
		n *= 2
	}
	inner, err := New(n, opts...)
	if err != nil {
		return nil, err
	}
	return &PaddedNetwork{inner: inner, ports: ports}, nil
}

// Ports returns the usable port count.
func (p *PaddedNetwork) Ports() int { return p.ports }

// FabricSize returns the embedded power-of-two network size.
func (p *PaddedNetwork) FabricSize() int { return p.inner.N() }

// Route realizes a multicast assignment given as per-input destination
// sets over the usable ports; sources and destinations must be below
// Ports(). It returns the deliveries for the usable outputs only.
func (p *PaddedNetwork) Route(dests [][]int) ([]Delivery, error) {
	if len(dests) > p.ports {
		return nil, fmt.Errorf("brsmn: %d destination sets for %d ports", len(dests), p.ports)
	}
	padded := make([][]int, p.inner.N())
	for i, ds := range dests {
		for _, d := range ds {
			if d < 0 || d >= p.ports {
				return nil, fmt.Errorf("brsmn: input %d has destination %d outside the %d usable ports", i, d, p.ports)
			}
		}
		padded[i] = ds
	}
	a, err := NewAssignment(p.inner.N(), padded)
	if err != nil {
		return nil, err
	}
	res, err := p.inner.Route(a)
	if err != nil {
		return nil, err
	}
	return res.Deliveries[:p.ports], nil
}
