package brsmn_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"brsmn"
	"brsmn/internal/core"
	"brsmn/internal/rbn"
	"brsmn/internal/workload"
)

// equalResults compares two routed results setting for setting —
// deliveries, last-level switches, and every RBN plan of every level.
// The reused and parallel planners must be indistinguishable from the
// cold path, not merely deliver the same outputs.
func equalResults(t *testing.T, label string, want, got *brsmn.Result) {
	t.Helper()
	if want.N != got.N {
		t.Fatalf("%s: N = %d, want %d", label, got.N, want.N)
	}
	if !reflect.DeepEqual(want.Deliveries, got.Deliveries) {
		t.Fatalf("%s: deliveries differ", label)
	}
	if !reflect.DeepEqual(want.Final, got.Final) {
		t.Fatalf("%s: final-level settings differ", label)
	}
	if len(want.Plans) != len(got.Plans) {
		t.Fatalf("%s: %d level plans, want %d", label, len(got.Plans), len(want.Plans))
	}
	for i := range want.Plans {
		w, g := want.Plans[i], got.Plans[i]
		if w.Level != g.Level || w.Base != g.Base || w.Size != g.Size {
			t.Fatalf("%s: plan %d is (level %d, base %d, size %d), want (level %d, base %d, size %d)",
				label, i, g.Level, g.Base, g.Size, w.Level, w.Base, w.Size)
		}
		if !reflect.DeepEqual(w.Scatter.Stages, g.Scatter.Stages) {
			t.Fatalf("%s: plan %d scatter settings differ", label, i)
		}
		if !reflect.DeepEqual(w.Quasi.Stages, g.Quasi.Stages) {
			t.Fatalf("%s: plan %d quasisort settings differ", label, i)
		}
	}
}

// TestPlannerDifferential pins the zero-allocation pipeline to the cold
// path: for random assignments across sizes, a reused sequential
// Planner, a reused parallel Planner (Workers > 1, exercising the
// sub-network recursion's goroutine split), and the pooled
// Network.Route must all produce results identical to a cold
// construct-and-route.
func TestPlannerDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for _, n := range []int{8, 64, 512} {
		seq, err := brsmn.NewPlanner(n)
		if err != nil {
			t.Fatal(err)
		}
		par, err := brsmn.NewPlanner(n, brsmn.WithParallelSetting(4))
		if err != nil {
			t.Fatal(err)
		}
		nw, err := brsmn.New(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < trials; trial++ {
			a := workload.Random(rng, n, rng.Float64(), rng.Float64())
			cold, err := core.Route(a)
			if err != nil {
				t.Fatal(err)
			}
			got, err := seq.Route(a)
			if err != nil {
				t.Fatal(err)
			}
			equalResults(t, fmt.Sprintf("n=%d trial %d planner", n, trial), cold, got)
			got, err = par.Route(a)
			if err != nil {
				t.Fatal(err)
			}
			equalResults(t, fmt.Sprintf("n=%d trial %d parallel planner", n, trial), cold, got)
			got, err = nw.Route(a)
			if err != nil {
				t.Fatal(err)
			}
			equalResults(t, fmt.Sprintf("n=%d trial %d network", n, trial), cold, got)
		}
	}
}

// TestPlannerResultLifetime pins the documented aliasing contract: a
// planner result is overwritten by the next Route, and Clone detaches
// it.
func TestPlannerResultLifetime(t *testing.T) {
	n := 16
	p, err := brsmn.NewPlanner(n)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := brsmn.BroadcastAssignment(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := brsmn.BroadcastAssignment(n, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Route(a1)
	if err != nil {
		t.Fatal(err)
	}
	detached := res.Clone()
	if _, err := p.Route(a2); err != nil {
		t.Fatal(err)
	}
	// res now aliases the a2 routing; the clone still describes a1.
	if res.Deliveries[0].Source != 9 {
		t.Fatalf("aliased result delivers source %d after reroute, want 9", res.Deliveries[0].Source)
	}
	for out, d := range detached.Deliveries {
		if d.Source != 3 {
			t.Fatalf("cloned result output %d delivers source %d, want 3", out, d.Source)
		}
	}
	if err := brsmn.Verify(a1, detached); err != nil {
		t.Fatalf("cloned result no longer verifies: %v", err)
	}
}

// TestNetworkConcurrentStress shares one Network across 8 goroutines
// under mixed traffic shapes (random, Zipf heavy-tail, broadcast) and
// verifies every result — the -race exercise of the planner pool and
// the parallel recursion together.
func TestNetworkConcurrentStress(t *testing.T) {
	n := 256
	iters := 12
	if testing.Short() {
		iters = 3
	}
	nw, err := brsmn.New(n, brsmn.WithParallelSetting(2))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < iters; i++ {
				var a brsmn.Assignment
				switch (g + i) % 3 {
				case 0:
					a = brsmn.RandomAssignment(rng, n, 0.8, 0.5)
				case 1:
					a = brsmn.ZipfAssignment(rng, n, 1.3, 0.9)
				default:
					var err error
					a, err = brsmn.BroadcastAssignment(n, rng.Intn(n))
					if err != nil {
						errc <- err
						return
					}
				}
				res, err := nw.Route(a)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d iter %d: %w", g, i, err)
					return
				}
				if err := brsmn.Verify(a, res); err != nil {
					errc <- fmt.Errorf("goroutine %d iter %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestRouteReuseAllocations asserts the tentpole property directly: a
// warm reused planner routes with (near) zero heap allocations per
// call.
func TestRouteReuseAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is not meaningful with -short's reduced warm-up")
	}
	n := 256
	p, err := core.NewPlanner(n, rbn.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	as := make([]brsmn.Assignment, 4)
	for i := range as {
		as[i] = workload.Random(rng, n, 0.8, 0.5)
	}
	// Warm up: arenas converge to their high-water marks.
	for i := 0; i < 8; i++ {
		if _, err := p.Route(as[i%len(as)]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(20, func() {
		if _, err := p.Route(as[i%len(as)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// The steady state is 0; allow a little slack for incidental runtime
	// allocations so the test is not flaky across Go releases.
	if avg > 2 {
		t.Fatalf("reused planner allocates %.1f objects per route, want ~0", avg)
	}
}
