package brsmn_test

import (
	"math/rand"
	"testing"

	"brsmn"
	"brsmn/internal/workload"
)

// TestSoak is the long randomized differential run: thousands of random
// assignments across sizes and workload families, every one verified
// against the oracle on both network variants. Skipped under -short.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(424242))
	total := 0
	for _, n := range []int{4, 8, 16, 32, 64} {
		nw, err := brsmn.New(n)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := brsmn.NewFeedback(n)
		if err != nil {
			t.Fatal(err)
		}
		draw := []func() brsmn.Assignment{
			func() brsmn.Assignment { return workload.Random(rng, n, rng.Float64(), rng.Float64()) },
			func() brsmn.Assignment { return brsmn.ZipfAssignment(rng, n, 1.2+rng.Float64(), rng.Float64()) },
			func() brsmn.Assignment { return workload.Permutation(rng, n) },
			func() brsmn.Assignment { return workload.HotSpot(rng, n, 1+rng.Intn(n), rng.Float64()) },
			func() brsmn.Assignment { return workload.Broadcast(n, rng.Intn(n)) },
		}
		for trial := 0; trial < 200; trial++ {
			a := draw[trial%len(draw)]()
			want, err := brsmn.Oracle(a)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := nw.Route(a)
			if err != nil {
				t.Fatalf("n=%d trial %d %v: %v", n, trial, a, err)
			}
			r2, err := fb.Route(a)
			if err != nil {
				t.Fatalf("n=%d trial %d %v: feedback: %v", n, trial, a, err)
			}
			for out := range want {
				if r1.Deliveries[out].Source != want[out] || r2.Deliveries[out].Source != want[out] {
					t.Fatalf("n=%d trial %d %v: output %d diverged", n, trial, a, out)
				}
			}
			total++
		}
	}
	t.Logf("soak: %d assignments verified", total)
}
