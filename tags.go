package brsmn

import (
	"brsmn/internal/cost"
	"brsmn/internal/gates"
	"brsmn/internal/mcast"
)

// TagSequence returns the routing-tag sequence (Section 7.1 of the
// paper) of a multicast with the given destination set in an n-output
// network, in the paper's compact notation: for example, the multicast
// {3,4,7} in an 8-output network encodes as "α1αε011" (Fig. 9). The
// sequence has n-1 tags: the complete binary tag tree serialized level
// by level with the bit-reversal interleaving of equation (12), so that
// hardware can split it between the two half-size networks by simply
// alternating tags (Fig. 10).
func TagSequence(n int, dests []int) (string, error) {
	s, err := mcast.SequenceFromDests(n, dests)
	if err != nil {
		return "", err
	}
	return mcast.FormatSequence(s), nil
}

// ParseTagSequence decodes a routing-tag sequence in the compact
// notation (accepting 'a'/'e' as ASCII aliases for α/ε) back to the
// destination set it encodes.
func ParseTagSequence(n int, seq string) ([]int, error) {
	tree, err := mcast.ParseSequenceString(n, seq)
	if err != nil {
		return nil, err
	}
	return tree.Dests(), nil
}

// CostRow is one row of the paper's Table 2 in concrete units: 2x2
// switches (or crosspoints), logic gates, switch-column depth, and
// routing time in gate delays.
type CostRow = cost.Row

// CostTable2 returns the four-network comparison of the paper's Table 2
// at size n: the Nassimi & Sahni and Lee & Oruc order-of-growth models,
// the BRSMN, and its feedback version.
func CostTable2(n int) []CostRow { return cost.Table2(n) }

// NetworkCost returns the BRSMN's cost row at size n.
func NetworkCost(n int) CostRow { return cost.BRSMN(n) }

// FeedbackCost returns the feedback implementation's cost row at size n.
func FeedbackCost(n int) CostRow { return cost.Feedback(n) }

// RoutingDelay returns the simulated routing time, in gate delays, of
// the unrolled n x n BRSMN's distributed switch-setting: the pipelined
// forward/backward sweeps of every level run cycle-accurately (Fig. 12
// hardware model). It grows as Θ(log^2 n).
func RoutingDelay(n int) int { return gates.BRSMNRoutingDelay(n) }

// FeedbackRoutingDelay returns the simulated routing time of the
// feedback implementation, including per-pass turnaround.
func FeedbackRoutingDelay(n int) int { return gates.FeedbackRoutingDelay(n) }
